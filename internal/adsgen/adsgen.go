// Package adsgen generates the synthetic ads corpora that stand in
// for the paper's eBay-derived data (DESIGN.md substitution table).
// Generation is deterministic given a seed, uses skewed (Zipf-like)
// popularity for categorical values, keeps Type I value pairs
// compatible (a Camry is a Toyota), and correlates the quantitative
// attributes the partial-match experiments rely on (newer cars cost
// more and have fewer miles).
package adsgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/sqldb"
)

// Ad is one generated advertisement: attribute name → value.
type Ad map[string]sqldb.Value

// Generator produces ads for the built-in domains.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// carModels maps each car make to its compatible models.
var carModels = map[string][]string{
	"toyota": {"camry", "corolla"}, "honda": {"accord", "civic"},
	"ford": {"focus", "mustang"}, "chevy": {"malibu", "impala"},
	"bmw": {"3series", "m3"}, "mazda": {"mazda3", "miata"},
	"nissan": {"altima", "sentra"}, "dodge": {"charger"},
	"hyundai": {"elantra"}, "subaru": {"outback"},
	"volkswagen": {"jetta"}, "audi": {"a4"}, "lexus": {"es350"},
	"kia": {"sorento"}, "jeep": {"wrangler"},
}

// motoModels maps each motorcycle make to its compatible models.
var motoModels = map[string][]string{
	"harley": {"sportster"}, "yamaha": {"r1"},
	"kawasaki": {"ninja", "vulcan"}, "suzuki": {"gsxr"},
	"ducati": {"monster"}, "triumph": {"bonneville"},
	"honda": {"cbr", "goldwing", "rebel"}, "bmw": {"gs"},
	"ktm": {"duke"}, "aprilia": {"tuono"},
}

// makeTier is a relative price multiplier per car/motorcycle make,
// giving the price distribution realistic brand structure.
var makeTier = map[string]float64{
	"bmw": 2.2, "audi": 2.0, "lexus": 1.9, "ducati": 1.9,
	"toyota": 1.1, "honda": 1.1, "subaru": 1.1, "volkswagen": 1.1,
	"ford": 1.0, "chevy": 1.0, "nissan": 1.0, "mazda": 0.95,
	"dodge": 1.0, "hyundai": 0.85, "kia": 0.85, "jeep": 1.2,
	"harley": 1.6, "triumph": 1.4, "yamaha": 1.0, "kawasaki": 1.0,
	"suzuki": 0.95, "ktm": 1.2, "aprilia": 1.3,
}

// Generate produces n ads for the domain schema s.
func (g *Generator) Generate(s *schema.Schema, n int) []Ad {
	out := make([]Ad, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.one(s))
	}
	return out
}

// Populate generates n ads for s and inserts them into a fresh table
// registered in db.
func (g *Generator) Populate(db *sqldb.DB, s *schema.Schema, n int) (*sqldb.Table, error) {
	tbl, err := db.CreateTable(s)
	if err != nil {
		return nil, err
	}
	for _, ad := range g.Generate(s, n) {
		if _, err := tbl.Insert(ad); err != nil {
			return nil, fmt.Errorf("adsgen: %w", err)
		}
	}
	return tbl, nil
}

// PopulateAll builds and fills a table for every built-in domain with
// n ads each, returning the database.
func PopulateAll(seed int64, n int) (*sqldb.DB, error) {
	db := sqldb.NewDB()
	for _, name := range schema.DomainNames {
		g := NewGenerator(seed + int64(len(name))*7919)
		if _, err := g.Populate(db, schema.ByName(name), n); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (g *Generator) one(s *schema.Schema) Ad {
	ad := make(Ad, len(s.Attrs))
	switch s.Domain {
	case "cars":
		g.vehicle(s, ad, carModels, "make", "model", 4000, 45000)
	case "motorcycles":
		g.vehicle(s, ad, motoModels, "make", "model", 1500, 20000)
	default:
		g.generic(s, ad)
	}
	// Fill any attribute the domain-specific path left empty.
	for _, a := range s.Attrs {
		if _, done := ad[a.Name]; done {
			continue
		}
		switch a.Type {
		case schema.TypeI, schema.TypeII:
			ad[a.Name] = sqldb.String(g.pickSkewed(a.Values))
		case schema.TypeIII:
			ad[a.Name] = sqldb.Number(g.numeric(a))
		}
	}
	return ad
}

// vehicle generates correlated make/model/year/price/mileage records
// for the cars and motorcycles domains.
func (g *Generator) vehicle(s *schema.Schema, ad Ad, models map[string][]string, makeAttr, modelAttr string, basePrice, topPrice float64) {
	makeA, _ := s.Attr(makeAttr)
	mk := g.pickSkewed(makeA.Values)
	compat := models[mk]
	if len(compat) == 0 {
		modelA, _ := s.Attr(modelAttr)
		compat = modelA.Values
	}
	model := compat[g.rng.Intn(len(compat))]
	ad[makeAttr] = sqldb.String(mk)
	ad[modelAttr] = sqldb.String(model)

	yearA, _ := s.Attr("year")
	// Recent years are more common: quadratic skew toward Max.
	u := math.Sqrt(g.rng.Float64())
	year := math.Round(yearA.Min + u*(yearA.Max-yearA.Min))
	ad["year"] = sqldb.Number(year)

	age := yearA.Max - year
	tier := makeTier[mk]
	if tier == 0 {
		tier = 1
	}
	// Exponential depreciation with multiplicative noise.
	price := basePrice + (topPrice-basePrice)*tier/2.2*math.Exp(-age/7)
	price *= 0.7 + 0.6*g.rng.Float64()
	priceA, _ := s.Attr("price")
	ad["price"] = sqldb.Number(clampRound(price, priceA.Min, priceA.Max))

	if mileA, ok := s.Attr("mileage"); ok {
		miles := age*11000*(0.5+g.rng.Float64()) + g.rng.Float64()*8000
		ad["mileage"] = sqldb.Number(clampRound(miles, mileA.Min, mileA.Max))
	}
}

// generic fills a record attribute-by-attribute with skewed
// categorical picks and per-shape numeric draws, correlating price
// with the first Type I value's popularity rank (rarer identifiers
// are pricier, as with brands).
func (g *Generator) generic(s *schema.Schema, ad Ad) {
	var firstRank float64 = -1
	for _, a := range s.Attrs {
		switch a.Type {
		case schema.TypeI:
			idx := g.pickSkewedIndex(len(a.Values))
			ad[a.Name] = sqldb.String(a.Values[idx])
			if firstRank < 0 {
				firstRank = float64(idx) / float64(len(a.Values))
			}
		case schema.TypeII:
			ad[a.Name] = sqldb.String(g.pickSkewed(a.Values))
		case schema.TypeIII:
			v := g.numeric(a)
			if isPriceLike(a) && firstRank >= 0 {
				// Rarer Type I values (higher rank) skew pricier.
				v = a.Min + (v-a.Min)*(0.6+0.9*firstRank)
			}
			ad[a.Name] = sqldb.Number(clampRound(v, a.Min, a.Max))
		}
	}
}

// numeric draws a value from the attribute's range: log-uniform for
// price-like attributes (heavy right tail), uniform otherwise, with
// integer rounding for ranges wider than 20.
func (g *Generator) numeric(a schema.Attribute) float64 {
	var v float64
	if isPriceLike(a) {
		lo := math.Log(math.Max(a.Min, 1))
		hi := math.Log(a.Max)
		v = math.Exp(lo + g.rng.Float64()*(hi-lo))
	} else {
		v = a.Min + g.rng.Float64()*(a.Max-a.Min)
	}
	return clampRound(v, a.Min, a.Max)
}

func isPriceLike(a schema.Attribute) bool {
	for _, u := range a.Unit {
		if u == "$" {
			return true
		}
	}
	return false
}

func clampRound(v, lo, hi float64) float64 {
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	if hi-lo > 20 {
		v = math.Round(v)
	} else {
		v = math.Round(v*10) / 10
	}
	return v
}

// pickSkewed selects a value with Zipf-like popularity: the i-th value
// has weight 1/(i+1), so early values dominate as real ad inventories
// do.
func (g *Generator) pickSkewed(values []string) string {
	return values[g.pickSkewedIndex(len(values))]
}

func (g *Generator) pickSkewedIndex(n int) int {
	if n == 1 {
		return 0
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
	}
	r := g.rng.Float64() * total
	for i := 0; i < n; i++ {
		r -= 1 / float64(i+1)
		if r <= 0 {
			return i
		}
	}
	return n - 1
}
