package adsgen

import (
	"testing"

	"repro/internal/schema"
)

func TestGenerateRespectsSchema(t *testing.T) {
	for _, name := range schema.DomainNames {
		s := schema.ByName(name)
		g := NewGenerator(11)
		ads := g.Generate(s, 200)
		if len(ads) != 200 {
			t.Fatalf("%s: generated %d", name, len(ads))
		}
		valid := map[string]map[string]bool{}
		for _, a := range s.Attrs {
			if a.Type != schema.TypeIII {
				set := map[string]bool{}
				for _, v := range a.Values {
					set[v] = true
				}
				valid[a.Name] = set
			}
		}
		for i, ad := range ads {
			for _, a := range s.Attrs {
				v, ok := ad[a.Name]
				if !ok || v.IsNull() {
					t.Fatalf("%s ad %d: missing %s", name, i, a.Name)
				}
				if a.Type == schema.TypeIII {
					n := v.Num()
					if n < a.Min || n > a.Max {
						t.Fatalf("%s ad %d: %s = %g outside [%g,%g]",
							name, i, a.Name, n, a.Min, a.Max)
					}
				} else if !valid[a.Name][v.Str()] {
					t.Fatalf("%s ad %d: %s = %q not a schema value",
						name, i, a.Name, v.Str())
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := schema.Cars()
	a := NewGenerator(5).Generate(s, 50)
	b := NewGenerator(5).Generate(s, 50)
	for i := range a {
		for k, v := range a[i] {
			if !v.Equal(b[i][k]) && !(v.IsNull() && b[i][k].IsNull()) {
				t.Fatalf("ad %d field %s: %v vs %v", i, k, v, b[i][k])
			}
		}
	}
}

func TestCarMakeModelCompatible(t *testing.T) {
	s := schema.Cars()
	g := NewGenerator(9)
	for i, ad := range g.Generate(s, 300) {
		mk := ad["make"].Str()
		model := ad["model"].Str()
		compat := carModels[mk]
		found := false
		for _, m := range compat {
			if m == model {
				found = true
			}
		}
		if !found {
			t.Fatalf("ad %d: %s %s is not a valid pairing", i, mk, model)
		}
	}
}

func TestVehicleCorrelations(t *testing.T) {
	// Newer cars should cost more and have fewer miles on average.
	s := schema.Cars()
	g := NewGenerator(13)
	ads := g.Generate(s, 2000)
	var oldP, newP, oldM, newM float64
	var oldN, newN int
	for _, ad := range ads {
		if ad["year"].Num() < 1998 {
			oldP += ad["price"].Num()
			oldM += ad["mileage"].Num()
			oldN++
		} else if ad["year"].Num() > 2008 {
			newP += ad["price"].Num()
			newM += ad["mileage"].Num()
			newN++
		}
	}
	if oldN == 0 || newN == 0 {
		t.Fatal("year distribution degenerate")
	}
	if newP/float64(newN) <= oldP/float64(oldN) {
		t.Error("newer cars should average pricier")
	}
	if newM/float64(newN) >= oldM/float64(oldN) {
		t.Error("newer cars should average fewer miles")
	}
}

func TestPopulateAll(t *testing.T) {
	db, err := PopulateAll(3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.Domains()); got != len(schema.DomainNames) {
		t.Fatalf("domains = %d", got)
	}
	for _, d := range schema.DomainNames {
		tbl, ok := db.TableForDomain(d)
		if !ok || tbl.Len() != 50 {
			t.Errorf("domain %s: table missing or wrong size", d)
		}
	}
}

func TestSkewedPick(t *testing.T) {
	g := NewGenerator(1)
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		counts[g.pickSkewedIndex(5)]++
	}
	// Zipf-ish: index 0 strictly most popular, index 4 least.
	if counts[0] <= counts[4] {
		t.Errorf("skew inverted: %v", counts)
	}
	if g.pickSkewedIndex(1) != 0 {
		t.Error("single-element pick")
	}
}
