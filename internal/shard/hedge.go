package shard

// Hedged reads for replica-set groups. The router times every read it
// serves and feeds the sample into the owning group's latency
// histogram; when a read against a multi-member group is still
// outstanding past the group's learned hedge delay (derived from its
// own p99), a backup copy of the request is launched at another
// routable member. The first leg to answer 200 wins and the loser is
// cancelled, so a slow or restarting member costs one extra upstream
// request instead of a degraded error. A primary that fails outright
// (connection refused, mid-restart) hedges immediately — the hedge is
// the retry — which replaces the old degrade-to-error window during a
// member restart.
//
// Writes never hedge: POST /api/ads and DELETE /api/ads/{id} are not
// idempotent from the router's point of view, so they keep doRouted's
// resolve → send → invalidate-and-retry-once discipline.
//
// Hedge volume is observable: telemetry.Front.Hedges counts backup
// requests launched, telemetry.Front.HedgeWins counts the subset whose
// response was the one actually served.

import (
	"context"
	"net/http"
	"sort"
	"time"

	"repro/internal/metrics/telemetry"
)

const (
	// hedgeMinSamples gates the learned delay: below this many recorded
	// reads the group's histogram is cold and hedgeColdDelay applies.
	hedgeMinSamples = 32
	// hedgeColdDelay is the conservative hedge delay used before the
	// group's histogram warms up.
	hedgeColdDelay = 50 * time.Millisecond
	// hedgeFloor bounds the learned delay from below so a sub-millisecond
	// p99 does not turn every read into two upstream requests.
	hedgeFloor = 2 * time.Millisecond
)

// groupLatency is one group's learned read-latency profile, shared by
// every domain the group hosts (like the shared leader watcher) so the
// hedge delay reflects the shard's behavior, not one domain's slice of
// its traffic.
type groupLatency struct {
	key  string // "|"-joined member list, the Owner form
	hist telemetry.Histogram
}

// hedgeDelay is how long a read may stay outstanding before a backup
// request launches: twice the group's observed p99 (so well under 1%
// of reads hedge in steady state), floored, with a fixed conservative
// delay while the histogram is cold.
func (g *groupLatency) hedgeDelay() time.Duration {
	snap := g.hist.Snapshot()
	if snap.Count < hedgeMinSamples {
		return hedgeColdDelay
	}
	d := 2 * time.Duration(snap.Quantile(0.99))
	if d < hedgeFloor {
		d = hedgeFloor
	}
	return d
}

// doRead issues one read to a partition. Single-member sets route
// statically exactly as before; multi-member sets take the hedged
// path. Either way the serving leg's latency feeds the set's histogram
// — which is also where the hedge delay is learned.
func (r *Router) doRead(ctx context.Context, method string, p *partState, pathAndQuery string, body []byte, contentType string, hdr map[string]string) (base string, status int, respBody []byte, err error) {
	if p.watch == nil {
		start := time.Now()
		base, status, respBody, err = r.doRouted(ctx, method, p, pathAndQuery, body, contentType, hdr)
		if err == nil && p.lat != nil {
			p.lat.hist.Record(time.Since(start).Nanoseconds())
		}
		return base, status, respBody, err
	}
	return r.doHedged(ctx, p, method, pathAndQuery, body, contentType, hdr)
}

// hedgeLeg is one request's outcome inside a hedged read.
type hedgeLeg struct {
	base   string
	status int
	body   []byte
	err    error
	backup bool
}

// doHedged races a read against up to two members of the partition's
// replica set: the resolved leader first, then — after the set's hedge
// delay, or immediately if the primary leg fails outright — a backup
// copy at another member. Reads are servable by any member, so the
// first leg answering 200 wins and the other is cancelled. When no leg
// answers 200 the primary's outcome is preferred for attribution, with
// any real HTTP response beating a transport error.
func (r *Router) doHedged(ctx context.Context, p *partState, method, pathAndQuery string, body []byte, contentType string, hdr map[string]string) (string, int, []byte, error) {
	g := p.lat
	members := p.members
	w := p.watch
	primary, err := w.Resolve(ctx)
	if err != nil {
		return "", 0, nil, err
	}
	backupTo := ""
	for _, m := range members {
		if m != primary {
			backupTo = m
			break
		}
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	legs := make(chan hedgeLeg, 2) // buffered: the losing leg's send never blocks
	launch := func(target string, backup bool) {
		go func() {
			start := time.Now()
			status, respBody, err := r.do(cctx, method, target, pathAndQuery, body, contentType, hdr)
			if err == nil {
				g.hist.Record(time.Since(start).Nanoseconds())
			}
			legs <- hedgeLeg{base: target, status: status, body: respBody, err: err, backup: backup}
		}()
	}
	launch(primary, false)
	timer := time.NewTimer(g.hedgeDelay())
	defer timer.Stop()

	hedged := backupTo == "" // a leaderless remainder has nowhere to hedge
	outstanding := 1
	var fallback *hedgeLeg
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				telemetry.Front.Hedges.Add(1)
				launch(backupTo, true)
				outstanding++
			}
		case leg := <-legs:
			outstanding--
			if leg.err == nil && leg.status == http.StatusOK {
				if leg.backup {
					telemetry.Front.HedgeWins.Add(1)
				}
				cancel() // the losing leg stops spending shard time
				return leg.base, leg.status, leg.body, nil
			}
			if leg.err != nil && !leg.backup {
				// The cached leader is stale the same way doRouted would
				// have discovered; the hedge below is the retry.
				w.Invalidate(leg.base)
			}
			if fallback == nil || (fallback.err != nil && leg.err == nil) {
				l := leg
				fallback = &l
			}
			if !hedged {
				// The primary settled badly before the timer fired:
				// hedge immediately instead of waiting out the delay.
				hedged = true
				telemetry.Front.Hedges.Add(1)
				launch(backupTo, true)
				outstanding++
				continue
			}
			if outstanding == 0 {
				if fallback.err == nil {
					return fallback.base, fallback.status, fallback.body, nil
				}
				return fallback.base, 0, nil, fallback.err
			}
		case <-cctx.Done():
			return primary, 0, nil, cctx.Err()
		}
	}
}

// GroupLatencyView is one group's entry in the front tier's latency
// status block.
type GroupLatencyView struct {
	// Group is the "|"-joined member list (the Owner form).
	Group string `json:"group"`
	// Count is the cumulative number of reads served, monotonic over
	// the router's lifetime (same no-reset contract as webui's block).
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	// HedgeDelayMs is the delay currently in force for this group.
	HedgeDelayMs float64 `json:"hedge_delay_ms"`
}

// GroupLatencies reports every group's learned read-latency profile,
// sorted by group key so the status shape is deterministic. Member
// sets retired by a rebalance stay listed — their counts are monotonic
// like every other latency counter, and scrapers difference them.
func (r *Router) GroupLatencies() []GroupLatencyView {
	r.regMu.Lock()
	groups := make([]*groupLatency, 0, len(r.regLat))
	for _, g := range r.regLat {
		groups = append(groups, g)
	}
	r.regMu.Unlock()
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	out := make([]GroupLatencyView, 0, len(groups))
	for _, g := range groups {
		snap := g.hist.Snapshot()
		out = append(out, GroupLatencyView{
			Group:        g.key,
			Count:        int64(snap.Count),
			MeanMs:       snap.Mean() / 1e6,
			P50Ms:        float64(snap.Quantile(0.50)) / 1e6,
			P99Ms:        float64(snap.Quantile(0.99)) / 1e6,
			HedgeDelayMs: float64(g.hedgeDelay()) / float64(time.Millisecond),
		})
	}
	return out
}
