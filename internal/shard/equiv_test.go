package shard_test

// HTTP-level cross-topology equivalence: a monolith cqadsweb node and
// sharded clusters (8-shard and 2-shard) behind the front tier must
// serve byte-identical /api/ask and /api/ask/batch responses for the
// 650-question workload; killing one shard degrades only that shard's
// domains. This is the wire-level twin of
// internal/core/shardequiv_test.go — both build their topologies with
// internal/shard/shardtest.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/adsgen"
	"repro/internal/schema"
	"repro/internal/shard/shardtest"
	"repro/internal/sqldb"
	"repro/internal/webui"
)

const equivAds = 100

// get fetches one URL and returns status + body.
func get(t *testing.T, rawurl string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(rawurl)
	if err != nil {
		t.Fatalf("GET %s: %v", rawurl, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// post sends a JSON body and returns status + response body.
func post(t *testing.T, rawurl string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(rawurl, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", rawurl, err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, respBody
}

func askURL(base, q string) string {
	return base + "/api/ask?" + url.Values{"q": {q}}.Encode()
}

// TestClusterEquivalence drives the 650-question workload through the
// monolith's API and through the front tier of an 8-shard and a
// 2-shard cluster, requiring byte-identical responses.
func TestClusterEquivalence(t *testing.T) {
	opts := shardtest.Options(equivAds)
	mono := shardtest.OpenMonolith(t, opts)
	monoSrv := httptest.NewServer(webui.NewServer(mono))
	defer monoSrv.Close()
	qc := shardtest.NewClassifier(t, opts)
	workload := shardtest.Workload(t, opts, mono)

	monoAsk := make([][]byte, len(workload))
	for i, q := range workload {
		status, body := get(t, askURL(monoSrv.URL, q))
		if status != http.StatusOK {
			t.Fatalf("monolith answered %d for %q: %s", status, q, body)
		}
		monoAsk[i] = body
	}
	batchReq, err := json.Marshal(map[string]any{"questions": workload})
	if err != nil {
		t.Fatal(err)
	}
	monoBatchStatus, monoBatch := post(t, monoSrv.URL+"/api/ask/batch", batchReq)
	if monoBatchStatus != http.StatusOK {
		t.Fatalf("monolith batch answered %d", monoBatchStatus)
	}

	for _, topo := range []struct {
		name   string
		groups [][]string
	}{
		{"8shard", shardtest.Groups8()},
		{"2shard", shardtest.Groups2()},
	} {
		t.Run(topo.name, func(t *testing.T) {
			cluster := shardtest.StartCluster(t, opts, topo.groups, qc)
			for i, q := range workload {
				status, body := get(t, askURL(cluster.Front.URL, q))
				if status != http.StatusOK {
					t.Fatalf("front tier answered %d for %q: %s", status, q, body)
				}
				if !bytes.Equal(body, monoAsk[i]) {
					t.Errorf("ask bytes diverge on %q\n got: %s\nwant: %s", q, body, monoAsk[i])
				}
			}
			status, body := post(t, cluster.Front.URL+"/api/ask/batch", batchReq)
			if status != http.StatusOK {
				t.Fatalf("front tier batch answered %d", status)
			}
			if !bytes.Equal(body, monoBatch) {
				t.Error("batch response bytes diverge from the monolith")
			}
		})
	}
}

// TestClusterDegradedMode kills one shard of an 8-shard cluster and
// asserts only its domain degrades: its questions answer the
// empty-answers error envelope while every other domain still answers
// byte-identically to the monolith, and the cluster health rolls up
// as degraded.
func TestClusterDegradedMode(t *testing.T) {
	opts := shardtest.Options(40)
	mono := shardtest.OpenMonolith(t, opts)
	monoSrv := httptest.NewServer(webui.NewServer(mono))
	defer monoSrv.Close()
	qc := shardtest.NewClassifier(t, opts)
	cluster := shardtest.StartCluster(t, opts, shardtest.Groups8(), qc)

	// A question per domain bucket: one that classifies to cars (the
	// shard we will kill) and one that does not.
	carsQ, otherQ, otherD := "", "", ""
	for _, q := range shardtest.Workload(t, opts, mono) {
		d, err := qc.ClassifyQuestion(q)
		if err != nil {
			continue
		}
		if d == "cars" && carsQ == "" {
			carsQ = q
		}
		if d != "cars" && otherQ == "" {
			otherQ, otherD = q, d
		}
		if carsQ != "" && otherQ != "" {
			break
		}
	}
	if carsQ == "" || otherQ == "" {
		t.Fatal("workload produced no usable cars/non-cars questions")
	}

	carsShard := -1
	for i, group := range cluster.Groups {
		if group[0] == "cars" {
			carsShard = i
		}
	}
	cluster.KillShard(carsShard)

	// The dead shard's domain: empty answers, error surfaced, 502.
	status, body := get(t, askURL(cluster.Front.URL, carsQ))
	if status != http.StatusBadGateway {
		t.Fatalf("dead-shard question answered %d: %s", status, body)
	}
	var env struct {
		Domain  string            `json:"domain"`
		Answers []json.RawMessage `json:"answers"`
		Error   string            `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("degraded envelope is not JSON: %s", body)
	}
	if env.Domain != "cars" || len(env.Answers) != 0 || env.Error == "" {
		t.Fatalf("degraded envelope = %s", body)
	}

	// Every other domain: unaffected, still byte-identical.
	_, monoBody := get(t, askURL(monoSrv.URL, otherQ))
	status, body = get(t, askURL(cluster.Front.URL, otherQ))
	if status != http.StatusOK || !bytes.Equal(body, monoBody) {
		t.Fatalf("%s question degraded too: %d %s", otherD, status, body)
	}

	// Batch: cars entries carry envelopes, the rest match the
	// monolith entry-for-entry.
	batchQs := []string{carsQ, otherQ, carsQ, otherQ}
	req, _ := json.Marshal(map[string]any{"questions": batchQs})
	parse := func(body []byte) []json.RawMessage {
		var out struct {
			Results []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("batch response: %v", err)
		}
		if len(out.Results) != len(batchQs) {
			t.Fatalf("batch returned %d results, want %d", len(out.Results), len(batchQs))
		}
		return out.Results
	}
	_, monoBatch := post(t, monoSrv.URL+"/api/ask/batch", req)
	status, clusterBatch := post(t, cluster.Front.URL+"/api/ask/batch", req)
	if status != http.StatusOK {
		t.Fatalf("degraded batch answered %d", status)
	}
	monoEntries, clusterEntries := parse(monoBatch), parse(clusterBatch)
	for i := range batchQs {
		if i%2 == 0 { // cars entries
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(clusterEntries[i], &e); err != nil || e.Error == "" {
				t.Errorf("batch entry %d should be a degraded envelope: %s", i, clusterEntries[i])
			}
			continue
		}
		if !bytes.Equal(clusterEntries[i], monoEntries[i]) {
			t.Errorf("batch entry %d (healthy domain) diverges", i)
		}
	}

	// Health rollup: degraded, not down.
	status, body = get(t, cluster.Front.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(body), `"state":"degraded"`) {
		t.Fatalf("cluster health = %d %s", status, body)
	}
	status, body = get(t, cluster.Front.URL+"/api/status")
	if status != http.StatusOK || !strings.Contains(string(body), `"shards_reachable":7`) {
		t.Fatalf("cluster status = %d %s", status, body)
	}
}

// adRecord renders a generated ad as the JSON record POST /api/ads
// accepts.
func adRecord(ad map[string]sqldb.Value) map[string]any {
	rec := make(map[string]any, len(ad))
	for col, v := range ad {
		if v.IsNull() {
			rec[col] = nil
			continue
		}
		rec[col] = v.String()
	}
	return rec
}

// TestIngestThroughRouterWhileBatchAsking is the acceptance race: ads
// flow through the front tier's ingest fan-out while batch questions
// scatter across the shards, under -race via CI. Afterwards every
// ingested ad must be live on its owning shard.
func TestIngestThroughRouterWhileBatchAsking(t *testing.T) {
	opts := shardtest.Options(50)
	qc := shardtest.NewClassifier(t, opts)
	cluster := shardtest.StartCluster(t, opts, shardtest.Groups2(), qc)
	mono := shardtest.OpenMonolith(t, opts)
	workload := shardtest.Workload(t, opts, mono)[:40]
	batchReq, _ := json.Marshal(map[string]any{"questions": workload})

	const (
		writers   = 4
		adsPer    = 12
		askRounds = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := adsgen.NewGenerator(int64(1000 + w))
			for i := 0; i < adsPer; i++ {
				domain := schema.DomainNames[(w+i)%len(schema.DomainNames)]
				ad := gen.Generate(schema.ByName(domain), 1)[0]
				body, err := json.Marshal(map[string]any{"domain": domain, "record": adRecord(ad)})
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(cluster.Front.URL+"/api/ads", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				respBody, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("ingest %s answered %d: %s", domain, resp.StatusCode, respBody)
					return
				}
			}
		}(w)
	}
	for reader := 0; reader < 2; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < askRounds; i++ {
				resp, err := http.Post(cluster.Front.URL+"/api/ask/batch", "application/json", bytes.NewReader(batchReq))
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch answered %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every ingested ad landed on its owning shard: live counts grew
	// by exactly the ingested totals.
	perDomain := make(map[string]int)
	for w := 0; w < writers; w++ {
		for i := 0; i < adsPer; i++ {
			perDomain[schema.DomainNames[(w+i)%len(schema.DomainNames)]]++
		}
	}
	_, statusBody := get(t, cluster.Front.URL+"/api/status")
	var cs struct {
		Shards []struct {
			Status struct {
				Domains []struct {
					Domain string `json:"domain"`
					Live   int    `json:"live"`
				} `json:"domains"`
			} `json:"status"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(statusBody, &cs); err != nil {
		t.Fatalf("cluster status: %v: %s", err, statusBody)
	}
	live := make(map[string]int)
	for _, sh := range cs.Shards {
		for _, d := range sh.Status.Domains {
			live[d.Domain] = d.Live
		}
	}
	for d, n := range perDomain {
		if want := opts.AdsPerDomain + n; live[d] != want {
			t.Errorf("domain %q live = %d, want %d (%d ingested)", d, live[d], want, n)
		}
	}
}
