// Package shard splits the ads domains across processes. Each SHARD is
// an ordinary cqadsweb server hosting a subset of the domains
// (core.Config.Domains / `cqadsweb -domains`): it owns those tables,
// their write-ahead log and snapshots, and may itself have read
// replicas. The FRONT TIER (Router + Server, `cqadsweb -shards`) holds
// no corpus at all: it classifies each incoming question exactly once
// — with the same classifier construction a monolith uses, so the
// routing decision is identical — and forwards the question to the
// shard owning the classified domain, proxying the shard's answer
// bytes verbatim. Batch questions are grouped per owning shard and
// scattered in parallel, then gathered back into input order; ingest
// is fanned out by the ad's Domain field; /api/status and /healthz are
// scatter-gathered into a cluster view.
//
// Failure model: ownership is static, so an unreachable shard cannot
// be routed around — its domains degrade to empty answers with the
// error surfaced in the response envelope while every other domain
// keeps answering. A question the classifier cannot place is
// broadcast to every hosted domain and the best single-domain answer
// wins (most exact answers, then most answers, then canonical domain
// order) — the router never panics on adversarial input.
package shard

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
)

// Classifier routes a question to its ads domain. The standard
// implementation is cqads.NewQuestionClassifier, built with the same
// Seed/AdsPerDomain as the shards so the front tier routes exactly as
// a monolith would classify.
type Classifier interface {
	ClassifyQuestion(question string) (string, error)
}

// ErrNoShard reports a domain no shard in the map hosts: either the
// request named an unknown domain or the shard map does not cover the
// classifier's output.
var ErrNoShard = errors.New("shard: no shard hosts the domain")

// RouteError is the typed failure envelope for one routed request: it
// names the domain the request was routed to and the shard that
// failed to answer. errors.Is unwraps through Err (so transport
// timeouts, context cancellation and ErrNoShard stay matchable), and
// Status carries the shard's HTTP status when the shard answered at
// all.
type RouteError struct {
	// Domain the request was routed to ("" when classification itself
	// failed and broadcast found no answer).
	Domain string
	// Shard is the owning shard's base URL ("" for ErrNoShard).
	Shard string
	// Status is the shard's HTTP status code, 0 when the shard was
	// unreachable (transport error, timeout).
	Status int
	// Err is the underlying failure.
	Err error
}

func (e *RouteError) Error() string {
	switch {
	case e.Shard == "":
		return fmt.Sprintf("shard: domain %q: %v", e.Domain, e.Err)
	case e.Status != 0:
		return fmt.Sprintf("shard: domain %q at %s answered %d: %v", e.Domain, e.Shard, e.Status, e.Err)
	default:
		return fmt.Sprintf("shard: domain %q at %s unreachable: %v", e.Domain, e.Shard, e.Err)
	}
}

func (e *RouteError) Unwrap() error { return e.Err }

// ParseMap parses a `-shards` flag value: comma-separated
// domain=group entries, where a group is one shard URL or a
// "|"-separated replica set ("|" because "," already separates
// entries), e.g.
//
//	cars=http://a:8081,motorcycles=http://a:8081,csjobs=http://b:8082
//	cars=http://a1:8081|http://a2:8081|http://a3:8081,csjobs=http://b:8082
//
// The same group may serve several domains (a multi-domain shard).
// A single-URL group is routed to statically, exactly as before
// replica sets existed; a multi-URL group makes the router resolve the
// set's current leader through GET /api/repl/leader and follow it
// across elections. Entries are trimmed and empty entries skipped
// (trailing commas are harmless); URLs must be absolute http or https,
// a domain may be mapped only once, and a group may not list the same
// URL twice. Trailing slashes are stripped so joined request paths are
// canonical.
func ParseMap(s string) (map[string][]string, error) {
	out := make(map[string][]string)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		domain, raw, ok := strings.Cut(entry, "=")
		domain = strings.TrimSpace(domain)
		raw = strings.TrimSpace(raw)
		if !ok || domain == "" || raw == "" {
			return nil, fmt.Errorf("shard: map entry %q is not domain=URL", entry)
		}
		var group []string
		for _, member := range strings.Split(raw, "|") {
			member = strings.TrimSpace(member)
			if member == "" {
				return nil, fmt.Errorf("shard: map entry %q has an empty replica-set member", entry)
			}
			u, err := url.Parse(member)
			if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				return nil, fmt.Errorf("shard: map entry %q: %q is not an absolute http(s) URL", entry, member)
			}
			canonical := strings.TrimRight(u.String(), "/")
			for _, seen := range group {
				if seen == canonical {
					return nil, fmt.Errorf("shard: map entry %q lists %q twice", entry, canonical)
				}
			}
			group = append(group, canonical)
		}
		if _, dup := out[domain]; dup {
			return nil, fmt.Errorf("shard: domain %q is mapped twice", domain)
		}
		out[domain] = group
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: empty shard map")
	}
	return out, nil
}
