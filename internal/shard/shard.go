// Package shard splits the ads domains across processes. Each SHARD is
// an ordinary cqadsweb server hosting a subset of the domains
// (core.Config.Domains / `cqadsweb -domains`): it owns those tables,
// their write-ahead log and snapshots, and may itself have read
// replicas. The FRONT TIER (Router + Server, `cqadsweb -shards`) holds
// no corpus at all: it classifies each incoming question exactly once
// — with the same classifier construction a monolith uses, so the
// routing decision is identical — and forwards the question to the
// shard owning the classified domain, proxying the shard's answer
// bytes verbatim. Batch questions are grouped per owning shard and
// scattered in parallel, then gathered back into input order; ingest
// is fanned out by the ad's Domain field; /api/status and /healthz are
// scatter-gathered into a cluster view.
//
// A single hot domain splits further by ad-key hash: a map entry may
// list one group per hash slice ("cars=h0:http://a,h1:http://b", the
// slice grammar of internal/partition, each group optionally a
// "|"-separated replica set). In-domain questions are then scattered
// to every partition — each leg carries the slice it addresses in the
// webui.ScatterHeader and returns a raw ranked fragment — and the
// router merges the fragments deterministically (score order, RowID
// tie-break) into bytes identical to a monolith's answer. Ingest
// routes by the ad key's hash; unpinned inserts round-robin, since
// every partition allocates only ids it owns. The Rebalancer hook on
// Server (implemented by internal/shard/rebalance) moves a slice live
// through FenceWrites/SwapPartition: the fence QUEUES writes to just
// the moving slice rather than erroring them, reads never pause.
//
// Failure model: ownership is static, so an unreachable shard cannot
// be routed around — its domains degrade to empty answers with the
// error surfaced in the response envelope while every other domain
// keeps answering. A question the classifier cannot place is
// broadcast to every hosted domain and the best single-domain answer
// wins (most exact answers, then most answers, then canonical domain
// order) — the router never panics on adversarial input.
package shard

import (
	"errors"
	"fmt"
	"math/bits"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"repro/internal/partition"
)

// Classifier routes a question to its ads domain. The standard
// implementation is cqads.NewQuestionClassifier, built with the same
// Seed/AdsPerDomain as the shards so the front tier routes exactly as
// a monolith would classify.
type Classifier interface {
	ClassifyQuestion(question string) (string, error)
}

// ErrNoShard reports a domain no shard in the map hosts: either the
// request named an unknown domain or the shard map does not cover the
// classifier's output.
var ErrNoShard = errors.New("shard: no shard hosts the domain")

// RouteError is the typed failure envelope for one routed request: it
// names the domain the request was routed to and the shard that
// failed to answer. errors.Is unwraps through Err (so transport
// timeouts, context cancellation and ErrNoShard stay matchable), and
// Status carries the shard's HTTP status when the shard answered at
// all.
type RouteError struct {
	// Domain the request was routed to ("" when classification itself
	// failed and broadcast found no answer).
	Domain string
	// Shard is the owning shard's base URL ("" for ErrNoShard).
	Shard string
	// Status is the shard's HTTP status code, 0 when the shard was
	// unreachable (transport error, timeout).
	Status int
	// Err is the underlying failure.
	Err error
}

func (e *RouteError) Error() string {
	switch {
	case e.Shard == "":
		return fmt.Sprintf("shard: domain %q: %v", e.Domain, e.Err)
	case e.Status != 0:
		return fmt.Sprintf("shard: domain %q at %s answered %d: %v", e.Domain, e.Shard, e.Status, e.Err)
	default:
		return fmt.Sprintf("shard: domain %q at %s unreachable: %v", e.Domain, e.Shard, e.Err)
	}
}

func (e *RouteError) Unwrap() error { return e.Err }

// Group is one partition of a domain in a shard map: the hash slice it
// owns and the replica-set members serving it. An unpartitioned domain
// is a single Group owning the whole hash space.
type Group struct {
	// Slice is the hash slice this group owns (partition.Slice; the
	// whole space for an unpartitioned domain).
	Slice partition.Slice
	// Members are the replica-set base URLs, canonicalized (absolute
	// http(s), trailing slash stripped). One member means static
	// routing; several mean the router follows the set's elected
	// leader.
	Members []string
}

// Map is a parsed shard map: every hosted domain to its partitions,
// sorted by ascending hash index and together covering the whole hash
// space exactly once.
type Map map[string][]Group

// ParseMap parses a `-shards` flag value: comma-separated entries.
// The basic entry is domain=group, where a group is one shard URL or a
// "|"-separated replica set ("|" because "," already separates
// entries), e.g.
//
//	cars=http://a:8081,motorcycles=http://a:8081,csjobs=http://b:8082
//	cars=http://a1:8081|http://a2:8081|http://a3:8081,csjobs=http://b:8082
//
// A domain may instead be HASH-PARTITIONED across several groups: the
// first entry names the domain and hash slot 0, and bare continuation
// entries (`hN:group`, no "=") attach the remaining slots to the same
// domain:
//
//	cars=h0:http://a:8081,h1:http://b:8082,csjobs=http://c:8083
//	cars=h0:http://a1|http://a2,h1:http://b1|http://b2
//
// A partitioned domain's slot indices must be exactly 0..P−1 for a
// power-of-two P (each ad key routes by partition.KeyHash's low bits),
// and hash slots cannot mix with a plain entry for the same domain.
// The same group may serve several domains (a multi-domain shard).
// A single-URL group is routed to statically, exactly as before
// replica sets existed; a multi-URL group makes the router resolve the
// set's current leader through GET /api/repl/leader and follow it
// across elections. Entries are trimmed and empty entries skipped
// (trailing commas are harmless); URLs must be absolute http or https,
// a domain may be mapped only once, and a group may not list the same
// URL twice. Trailing slashes are stripped so joined request paths are
// canonical.
func ParseMap(s string) (Map, error) {
	out := make(Map)
	// hashed[domain] records the slot indices seen so far so the cover
	// can be validated once the whole flag is parsed.
	hashed := make(map[string][]uint32)
	lastDomain := ""
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		domain, raw, isMapping := strings.Cut(entry, "=")
		if !isMapping {
			// A bare hN:group entry continues the previous domain's
			// hash slots.
			if _, isHash := splitHashSlot(entry); !isHash {
				return nil, fmt.Errorf("shard: map entry %q is not domain=URL", entry)
			}
			if lastDomain == "" || hashed[lastDomain] == nil {
				return nil, fmt.Errorf("shard: map entry %q continues no hash-partitioned domain", entry)
			}
			domain, raw = lastDomain, entry
		} else {
			domain = strings.TrimSpace(domain)
			raw = strings.TrimSpace(raw)
			if domain == "" || raw == "" {
				return nil, fmt.Errorf("shard: map entry %q is not domain=URL", entry)
			}
			if _, dup := out[domain]; dup {
				return nil, fmt.Errorf("shard: domain %q is mapped twice", domain)
			}
		}
		// Plain/hash mixing for one domain cannot parse: a second
		// `domain=` entry is a duplicate, and continuations are
		// hash-form by construction.
		if slot, isHash := splitHashSlot(raw); isHash {
			raw = raw[strings.Index(raw, ":")+1:]
			hashed[domain] = append(hashed[domain], slot)
		}
		group, err := parseGroup(entry, raw)
		if err != nil {
			return nil, err
		}
		out[domain] = append(out[domain], Group{Members: group})
		lastDomain = domain
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: empty shard map")
	}
	// Assign and validate slices: a hash-partitioned domain's slots
	// must be a permutation of 0..P−1 with P a power of two.
	for domain, groups := range out {
		slots, isHash := hashed[domain]
		if !isHash {
			continue
		}
		p := uint32(len(slots))
		if bits.OnesCount32(p) != 1 {
			return nil, fmt.Errorf("shard: domain %q has %d hash slots; the partition count must be a power of two", domain, p)
		}
		seen := make([]bool, p)
		for i, slot := range slots {
			if slot >= p || seen[slot] {
				return nil, fmt.Errorf("shard: domain %q hash slots must be exactly h0..h%d, each once (got h%d)", domain, p-1, slot)
			}
			seen[slot] = true
			groups[i].Slice = partition.Slice{Index: slot, Count: p}
		}
		sort.Slice(groups, func(a, b int) bool { return groups[a].Slice.Index < groups[b].Slice.Index })
	}
	return out, nil
}

// splitHashSlot recognizes a "hN:rest" hash-slot prefix and returns N.
func splitHashSlot(s string) (slot uint32, ok bool) {
	head, _, found := strings.Cut(s, ":")
	if !found || len(head) < 2 || head[0] != 'h' {
		return 0, false
	}
	n, err := strconv.ParseUint(head[1:], 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(n), true
}

// parseGroup parses one "|"-separated replica set.
func parseGroup(entry, raw string) ([]string, error) {
	var group []string
	for _, member := range strings.Split(raw, "|") {
		member = strings.TrimSpace(member)
		if member == "" {
			return nil, fmt.Errorf("shard: map entry %q has an empty replica-set member", entry)
		}
		u, err := url.Parse(member)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("shard: map entry %q: %q is not an absolute http(s) URL", entry, member)
		}
		canonical := strings.TrimRight(u.String(), "/")
		for _, seen := range group {
			if seen == canonical {
				return nil, fmt.Errorf("shard: map entry %q lists %q twice", entry, canonical)
			}
		}
		group = append(group, canonical)
	}
	return group, nil
}
