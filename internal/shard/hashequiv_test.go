package shard_test

// HTTP-level hash-partition equivalence: splitting ONE domain's rows
// by ad-key hash across 2 or 4 partition shards must be invisible at
// the wire. The front tier scatters cars questions to every partition
// and merges the ranked fragments; the merged /api/ask and
// /api/ask/batch responses must be byte-identical to a monolith
// serving the same corpus — and stay byte-identical after the same
// pinned ads are ingested into both topologies through their public
// ingest endpoints (the fan-out path on the cluster, plain POST on
// the monolith).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/adsgen"
	"repro/internal/schema"
	"repro/internal/shard/shardtest"
	"repro/internal/webui"
)

// pinnedPost ingests one ad with a caller-chosen ad id, so two
// topologies assign identical row ids and stay comparable.
func pinnedPost(t *testing.T, base string, id uint64, body []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/api/ads", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(webui.AdIDHeader, strconv.FormatUint(id, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("pinned POST /api/ads: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("pinned ingest of id %d answered %d: %s", id, resp.StatusCode, buf.String())
	}
}

// TestHashPartitionEquivalence drives the 650-question workload
// through a monolith and through front tiers over a 2-way and a 4-way
// hash split of cars, requiring byte-identical responses before and
// after a round of pinned ingest.
func TestHashPartitionEquivalence(t *testing.T) {
	opts := shardtest.Options(equivAds)
	mono := shardtest.OpenMonolith(t, opts)
	monoSrv := httptest.NewServer(webui.NewServer(mono))
	defer monoSrv.Close()
	qc := shardtest.NewClassifier(t, opts)
	workload := shardtest.Workload(t, opts, mono)

	// A deterministic batch of cars ads, pinned to ids far above the
	// generated corpus so both topologies create identical rows.
	gen := adsgen.NewGenerator(7007)
	ads := gen.Generate(schema.ByName("cars"), 12)
	type pinned struct {
		id   uint64
		body []byte
	}
	var ingest []pinned
	for i, ad := range ads {
		body, err := json.Marshal(map[string]any{"domain": "cars", "record": adRecord(ad)})
		if err != nil {
			t.Fatal(err)
		}
		ingest = append(ingest, pinned{id: uint64(1_000_000 + i), body: body})
	}

	askAll := func(t *testing.T, base string) [][]byte {
		t.Helper()
		out := make([][]byte, len(workload))
		for i, q := range workload {
			status, body := get(t, askURL(base, q))
			if status != http.StatusOK {
				t.Fatalf("%s answered %d for %q: %s", base, status, q, body)
			}
			out[i] = body
		}
		return out
	}
	batchReq, err := json.Marshal(map[string]any{"questions": workload})
	if err != nil {
		t.Fatal(err)
	}
	batchAll := func(t *testing.T, base string) []byte {
		t.Helper()
		status, body := post(t, base+"/api/ask/batch", batchReq)
		if status != http.StatusOK {
			t.Fatalf("%s batch answered %d", base, status)
		}
		return body
	}

	monoAsk := askAll(t, monoSrv.URL)
	monoBatch := batchAll(t, monoSrv.URL)
	for _, p := range ingest {
		pinnedPost(t, monoSrv.URL, p.id, p.body)
	}
	monoAskAfter := askAll(t, monoSrv.URL)
	monoBatchAfter := batchAll(t, monoSrv.URL)

	for _, count := range []uint32{2, 4} {
		t.Run(fmt.Sprintf("%dway", count), func(t *testing.T) {
			cluster := shardtest.StartPartitionCluster(t, opts, "cars", count, qc, nil)
			for i, q := range workload {
				status, body := get(t, askURL(cluster.Front.URL, q))
				if status != http.StatusOK {
					t.Fatalf("front tier answered %d for %q: %s", status, q, body)
				}
				if !bytes.Equal(body, monoAsk[i]) {
					t.Errorf("ask bytes diverge on %q\n got: %s\nwant: %s", q, body, monoAsk[i])
				}
			}
			if !bytes.Equal(batchAll(t, cluster.Front.URL), monoBatch) {
				t.Error("batch response bytes diverge from the monolith")
			}

			// Pinned ingest through the fan-out, then re-compare: each ad
			// must land on exactly the partition owning its key hash, and
			// the merged answers must still match the monolith byte for
			// byte.
			for _, p := range ingest {
				pinnedPost(t, cluster.Front.URL, p.id, p.body)
			}
			for i, q := range workload {
				_, body := get(t, askURL(cluster.Front.URL, q))
				if !bytes.Equal(body, monoAskAfter[i]) {
					t.Errorf("post-ingest ask bytes diverge on %q\n got: %s\nwant: %s", q, body, monoAskAfter[i])
				}
			}
			if !bytes.Equal(batchAll(t, cluster.Front.URL), monoBatchAfter) {
				t.Error("post-ingest batch bytes diverge from the monolith")
			}

			// The cluster latency rollup merged every partition's raw
			// histograms: all count+1 shards contribute, and the merged
			// ask count covers at least one leg per question served.
			status, statusBody := get(t, cluster.Front.URL+"/api/status")
			if status != http.StatusOK {
				t.Fatalf("cluster status answered %d", status)
			}
			var cs struct {
				ClusterLatency struct {
					Shards int `json:"shards"`
					Ask    struct {
						Count int64 `json:"count"`
					} `json:"ask"`
				} `json:"cluster_latency"`
			}
			if err := json.Unmarshal(statusBody, &cs); err != nil {
				t.Fatalf("cluster status: %v", err)
			}
			if cs.ClusterLatency.Shards != int(count)+1 {
				t.Errorf("cluster_latency merged %d shards, want %d", cs.ClusterLatency.Shards, count+1)
			}
			if cs.ClusterLatency.Ask.Count < int64(2*len(workload)) {
				t.Errorf("cluster_latency ask count = %d, want at least %d", cs.ClusterLatency.Ask.Count, 2*len(workload))
			}

			// The split is real: every partition holds a strict subset and
			// the slice sizes sum to the monolith's cars table.
			total := 0
			for i, sys := range cluster.Parts {
				tbl, ok := sys.DB().TableForDomain("cars")
				if !ok {
					t.Fatalf("partition %d hosts no cars table", i)
				}
				if tbl.Len() == 0 {
					t.Errorf("partition %d is empty — the hash split did nothing", i)
				}
				total += tbl.Len()
			}
			monoTbl, _ := mono.DB().TableForDomain("cars")
			if total != monoTbl.Len() {
				t.Errorf("partitions hold %d cars rows, monolith holds %d", total, monoTbl.Len())
			}
		})
	}
}
