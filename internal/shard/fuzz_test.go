package shard_test

// Fuzzing the two surfaces adversarial input reaches first: the
// -shards flag parser, and the router's question→domain routing (a
// real trained classifier plus broadcast-and-merge fallback — the
// router must route or degrade, never panic).

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/cqads"
	"repro/internal/shard"
)

func newLoopbackListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func FuzzParseMap(f *testing.F) {
	f.Add("cars=http://a:8080")
	f.Add("cars=http://a,motorcycles=http://a,csjobs=http://b")
	f.Add("cars=http://a,")
	f.Add(" cars = http://a/ , jewellery = https://b:9090 ")
	f.Add("")
	f.Add(",")
	f.Add("=")
	f.Add("cars=")
	f.Add("=http://a")
	f.Add("cars=http://a,cars=http://b")
	f.Add("cars=ftp://a")
	f.Add("cars=http://")
	f.Add("cars=://nope")
	f.Add("cars=http://a=b=c")
	f.Add("汽车=http://a")
	f.Add("cars=http://[::1]:8080")
	f.Add(strings.Repeat("cars=http://a,", 100))
	f.Add("cars=http://a\x00b")
	f.Add("cars=http://a1|http://a2|http://a3")
	f.Add("cars=http://a|http://a")
	f.Add("cars=http://a|")
	f.Add("cars=|")
	f.Add("cars=http://a|http://b,csjobs=http://a|http://b")
	f.Add("cars=h0:http://a,h1:http://b")
	f.Add("cars=h0:http://a,h1:http://b,h2:http://c,h3:http://d")
	f.Add("cars=h0:http://a|http://b,h1:http://c|http://d,csjobs=http://e")
	f.Add("cars=h0:http://a,h0:http://b")
	f.Add("cars=h0:http://a,h2:http://b")
	f.Add("cars=h1:http://a,h0:http://b")
	f.Add("cars=h0:http://a,h1:http://b,h2:http://c")
	f.Add("cars=h0:http://a")
	f.Add("h0:http://a")
	f.Add("cars=http://a,h1:http://b")
	f.Add("cars=h:http://a")
	f.Add("cars=hx:http://a")
	f.Add("cars=h-1:http://a,h0:http://b")
	f.Add("cars=h99999999999999999999:http://a")
	f.Add("cars=h0:,h1:http://b")
	f.Add("cars=h0:http://a,h1:http://b,cars=h0:http://c")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := shard.ParseMap(s)
		if err != nil {
			if m != nil {
				t.Fatal("error with non-nil map")
			}
			return
		}
		if len(m) == 0 {
			t.Fatal("nil error with empty map")
		}
		for domain, groups := range m {
			if strings.TrimSpace(domain) == "" {
				t.Fatalf("empty domain key in %#v", m)
			}
			if len(groups) == 0 {
				t.Fatalf("domain %q accepted with no groups", domain)
			}
			// Either one whole-space group (plain form, zero Slice) or a
			// set of hash groups whose slices tile the space exactly.
			if len(groups) == 1 && groups[0].Slice.Count == 0 {
				// plain form
			} else {
				count := groups[0].Slice.Count
				if count&(count-1) != 0 || int(count) != len(groups) {
					t.Fatalf("domain %q: %d groups under partition count %d", domain, len(groups), count)
				}
				for i, g := range groups {
					if err := g.Slice.Validate(); err != nil {
						t.Fatalf("domain %q group %d has invalid slice: %v", domain, i, err)
					}
					if g.Slice.Count != count {
						t.Fatalf("domain %q mixes partition counts %d and %d", domain, count, g.Slice.Count)
					}
					if g.Slice.Index != uint32(i) {
						t.Fatalf("domain %q groups not sorted/tiling: slot %d at position %d", domain, g.Slice.Index, i)
					}
				}
			}
			for gi, g := range groups {
				if len(g.Members) == 0 {
					t.Fatalf("domain %q group %d accepted with no members", domain, gi)
				}
				seen := map[string]bool{}
				for _, base := range g.Members {
					u, err := url.Parse(base)
					if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
						t.Fatalf("accepted URL %q does not round-trip as absolute http(s)", base)
					}
					if strings.HasSuffix(base, "/") {
						t.Fatalf("accepted URL %q keeps its trailing slash", base)
					}
					if seen[base] {
						t.Fatalf("group for %q lists %q twice", domain, base)
					}
					seen[base] = true
				}
			}
		}
	})
}

// fuzzRouter builds one real router lazily: a trained classifier over
// a small deterministic environment, fronting two stub shards that
// answer every question with canned JSON (the fuzz target is routing,
// not answering).
var fuzzRouter = sync.OnceValues(func() (*shard.Router, error) {
	qc, err := cqads.NewQuestionClassifier(cqads.Options{Seed: 42, AdsPerDomain: 40})
	if err != nil {
		return nil, err
	}
	stub := func(domain string) *http.ServeMux {
		mux := http.NewServeMux()
		mux.HandleFunc("/api/ask", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"domain":"` + domain + `","exact_count":0,"answers":[]}`))
		})
		return mux
	}
	// Plain http.Server on loopback via httptest would tie the stubs'
	// lifetime to one test; package-scoped stubs are fine for fuzzing
	// (the process dies with them).
	srvA := &http.Server{Handler: stub("a")}
	srvB := &http.Server{Handler: stub("b")}
	lnA, err := newLoopbackListener()
	if err != nil {
		return nil, err
	}
	lnB, err := newLoopbackListener()
	if err != nil {
		return nil, err
	}
	go func() { _ = srvA.Serve(lnA) }()
	go func() { _ = srvB.Serve(lnB) }()
	shards := map[string]string{}
	domains := []string{"cars", "motorcycles", "clothing", "csjobs", "furniture", "foodcoupons", "instruments", "jewellery"}
	for i, d := range domains {
		if i%2 == 0 {
			shards[d] = "http://" + lnA.Addr().String()
		} else {
			shards[d] = "http://" + lnB.Addr().String()
		}
	}
	return shard.New(shard.Config{
		Shards:     shards,
		Classifier: qc,
		Client:     &http.Client{Timeout: 2 * time.Second},
	})
})

func FuzzRouteQuestion(f *testing.F) {
	f.Add("cheapest honda civic")
	f.Add("gold necklace with diamond under 2000 dollars")
	f.Add("")
	f.Add("   ")
	f.Add("the of and a an") // pure stopwords: unclassifiable
	f.Add("zzzzqqqq xyzzy plugh")
	f.Add("SELECT * FROM ads; DROP TABLE ads")
	f.Add("汽车 本田 思域 最便宜")
	f.Add("café škoda naïve")
	f.Add(strings.Repeat("honda ", 2000))
	f.Add("\x00\x01\x02\xff")
	f.Add("a=b&c=d%20%%%")
	f.Fuzz(func(t *testing.T, q string) {
		rt, err := fuzzRouter()
		if err != nil {
			t.Skipf("building fuzz router: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		p, err := rt.Ask(ctx, "", q)
		if err != nil {
			// Degradation must be typed, never a panic and never nil
			// results with nil error.
			var re *shard.RouteError
			if !errors.As(err, &re) {
				t.Fatalf("Ask(%q) error is not a *RouteError: %v", q, err)
			}
			return
		}
		if p == nil || p.Status != http.StatusOK || len(p.Body) == 0 {
			t.Fatalf("Ask(%q) returned a degenerate answer: %+v", q, p)
		}
		items := rt.AskBatch(ctx, "", []string{q, "cheapest honda", q})
		if len(items) != 3 {
			t.Fatalf("batch returned %d items", len(items))
		}
		for i, item := range items {
			if item.Index != i {
				t.Fatalf("batch order broken at %d", i)
			}
			if item.Err == nil && item.JSON == nil {
				t.Fatalf("batch item %d has neither answer nor error", i)
			}
		}
	})
}
