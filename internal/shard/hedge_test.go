package shard_test

// Front-tier hedged reads: a slow group member is raced against
// another member after the group's hedge delay, and a member that dies
// outright is hedged immediately — the ask succeeds where the old
// invalidate-and-retry would have degraded to an error, because the
// surviving follower can serve reads even while it still vouches for
// the dead leader.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/metrics/telemetry"
	"repro/internal/shard"
)

// hedgeCounters snapshots the process-wide hedge telemetry so tests
// sharing the process can assert on deltas.
func hedgeCounters() (hedges, wins int64) {
	return telemetry.Front.Hedges.Load(), telemetry.Front.HedgeWins.Load()
}

func TestRouterHedgesSlowMember(t *testing.T) {
	checkGoroutines(t)
	a := newMember(t, "node-a")
	b := newMember(t, "node-b")
	a.lead(1)
	b.follow(a.srv.URL, 1)
	a.slow(2 * time.Second) // far beyond the cold hedge delay

	rt, err := shard.New(shard.Config{
		Groups: map[string][]string{"cars": {a.srv.URL, b.srv.URL}},
		Client: &http.Client{Timeout: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	hedgesBefore, winsBefore := hedgeCounters()

	p, err := rt.Ask(context.Background(), "cars", "q")
	if err != nil {
		t.Fatal(err)
	}
	if got := servedBy(t, p.Body); got != "node-b" {
		t.Fatalf("slow leader's ask served by %q, want the node-b hedge", got)
	}
	hedges, wins := hedgeCounters()
	if hedges-hedgesBefore < 1 {
		t.Fatal("no hedge was counted for the slow read")
	}
	if wins-winsBefore < 1 {
		t.Fatal("the backup served the answer yet no hedge win was counted")
	}

	// The served read is in the group's latency profile.
	views := rt.GroupLatencies()
	if len(views) != 1 {
		t.Fatalf("GroupLatencies returned %d groups, want 1", len(views))
	}
	if views[0].Group != a.srv.URL+"|"+b.srv.URL || views[0].Count < 1 {
		t.Fatalf("group profile = %+v, want the cars group with ≥1 read", views[0])
	}
}

func TestRouterHedgeAbsorbsMemberRestart(t *testing.T) {
	checkGoroutines(t)
	a := newMember(t, "node-a")
	b := newMember(t, "node-b")
	a.lead(1)
	b.follow(a.srv.URL, 1)

	rt, err := shard.New(shard.Config{
		Groups: map[string][]string{"cars": {a.srv.URL, b.srv.URL}},
		Client: &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ctx := context.Background()

	// Warm the leader cache on node-a.
	if p, err := rt.Ask(ctx, "cars", "q"); err != nil || servedBy(t, p.Body) != "node-a" {
		t.Fatalf("warmup ask failed: %v", err)
	}

	// node-a restarts. node-b still vouches for it, so the old
	// invalidate-and-retry would re-resolve the dead leader and give
	// up; the hedge serves the read from node-b instead.
	a.srv.Close()
	_, winsBefore := hedgeCounters()
	p, err := rt.Ask(ctx, "cars", "q")
	if err != nil {
		t.Fatalf("ask during member restart degraded to an error: %v", err)
	}
	if got := servedBy(t, p.Body); got != "node-b" {
		t.Fatalf("restart ask served by %q, want node-b", got)
	}
	if _, wins := hedgeCounters(); wins-winsBefore < 1 {
		t.Fatal("restart was absorbed without counting a hedge win")
	}
}

func TestFrontStatusReportsHedges(t *testing.T) {
	checkGoroutines(t)
	a := newMember(t, "node-a")
	a.lead(1)
	rt, err := shard.New(shard.Config{
		Groups: map[string][]string{"cars": {a.srv.URL}},
		Client: &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	if _, err := rt.Ask(context.Background(), "cars", "q"); err != nil {
		t.Fatal(err)
	}

	front := httptest.NewServer(shard.NewServer(rt))
	t.Cleanup(front.Close)
	resp, err := http.Get(front.URL + "/api/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Front struct {
			Hedges    int64                    `json:"hedges"`
			HedgeWins int64                    `json:"hedge_wins"`
			Groups    []shard.GroupLatencyView `json:"groups"`
		} `json:"front"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Front.Groups) != 1 {
		t.Fatalf("front status reported %d groups, want 1", len(status.Front.Groups))
	}
	g := status.Front.Groups[0]
	if g.Group != a.srv.URL || g.Count < 1 || g.HedgeDelayMs <= 0 {
		t.Fatalf("front group block = %+v, want the solo group with ≥1 read and a positive hedge delay", g)
	}
}
