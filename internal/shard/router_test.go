package shard_test

// Fault injection against the front tier: slow shards (deadline
// exceeded), shards answering 503 (the write-failed latch), shards
// mid-recovery, and partial-batch failures. Every test asserts
// input-order gather and typed *shard.RouteError envelopes, and every
// test finishes with a goleak-style goroutine-count check — the
// router promises to spawn nothing that outlives its calls.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/shard"
)

// checkGoroutines snapshots the goroutine count and returns a check
// to run after the test's servers and routers are closed: the count
// must return to the baseline (retrying briefly — http internals wind
// down asynchronously) or the test fails with a full stack dump.
// Register it FIRST via t.Cleanup so it runs after the other cleanups.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}

// tableClassifier routes by exact question text.
type tableClassifier map[string]string

func (c tableClassifier) ClassifyQuestion(q string) (string, error) {
	if d, ok := c[q]; ok {
		return d, nil
	}
	return "", fmt.Errorf("unclassifiable question %q", q)
}

// cannedResult is the minimal per-question answer object a fake shard
// returns.
func cannedResult(domain, q string) json.RawMessage {
	b, _ := json.Marshal(map[string]any{
		"domain": domain, "interpretation": q, "sql": "",
		"exact_count": 1, "answers": []any{map[string]any{"exact": true, "rank_sim": 1.0, "record": map[string]string{}}},
	})
	return b
}

// fakeShard serves the two endpoints the router calls, answering
// canned results; hook overrides the whole handler when non-nil.
func fakeShard(t *testing.T, domain string, hook http.HandlerFunc) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hook != nil {
			hook(w, r)
			return
		}
		switch {
		case r.URL.Path == "/api/ask":
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(cannedResult(domain, r.URL.Query().Get("q")))
		case r.URL.Path == "/api/ask/batch":
			var req struct {
				Questions []string `json:"questions"`
			}
			_ = json.NewDecoder(r.Body).Decode(&req)
			results := make([]json.RawMessage, len(req.Questions))
			for i, q := range req.Questions {
				results[i] = cannedResult(domain, q)
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"results": results})
		case r.URL.Path == "/healthz":
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]string{"state": "serving"})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// newRouter wires a Router over fake shards with a short upstream
// timeout, registering cleanups in leak-check-friendly order.
func newRouter(t *testing.T, shards map[string]string, cls shard.Classifier, timeout time.Duration) *shard.Router {
	t.Helper()
	rt, err := shard.New(shard.Config{
		Shards:     shards,
		Classifier: cls,
		Client:     &http.Client{Timeout: timeout},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestRouterSlowShardDeadline: a shard that answers slower than the
// client timeout fails only its own questions, with a typed error;
// the fast shard's answers land in input order.
func TestRouterSlowShardDeadline(t *testing.T) {
	checkGoroutines(t)
	release := make(chan struct{})
	slow := fakeShard(t, "cars", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // client gave up
		case <-release: // test over; let the server close cleanly
		}
	})
	t.Cleanup(func() { close(release) })
	fast := fakeShard(t, "csjobs", nil)
	cls := tableClassifier{"q-cars": "cars", "q-jobs": "csjobs"}
	rt := newRouter(t, map[string]string{"cars": slow.URL, "csjobs": fast.URL}, cls, 150*time.Millisecond)

	questions := []string{"q-cars", "q-jobs", "q-cars", "q-jobs"}
	items := rt.AskBatch(context.Background(), "", questions)
	if len(items) != len(questions) {
		t.Fatalf("got %d items", len(items))
	}
	for i, item := range items {
		if item.Index != i {
			t.Errorf("item %d carries index %d", i, item.Index)
		}
		if i%2 == 0 { // cars: the slow shard
			var re *shard.RouteError
			if !errors.As(item.Err, &re) {
				t.Fatalf("slow-shard item %d error = %v, want *RouteError", i, item.Err)
			}
			if re.Domain != "cars" || re.Shard != slow.URL || re.Status != 0 {
				t.Errorf("slow-shard RouteError = %+v", re)
			}
			continue
		}
		if item.Err != nil || item.JSON == nil {
			t.Errorf("fast-shard item %d: err=%v", i, item.Err)
		}
	}
	// Single-question path times out with the same typed error.
	if _, err := rt.Ask(context.Background(), "", "q-cars"); err == nil {
		t.Fatal("slow-shard Ask succeeded")
	} else {
		var re *shard.RouteError
		if !errors.As(err, &re) || re.Domain != "cars" {
			t.Fatalf("slow-shard Ask error = %v", err)
		}
	}
}

// TestRouterShard503: a shard whose durability latch tripped answers
// 503; the batch path reports it as a typed error carrying the
// status, and the single-question path proxies the shard's own
// response so the caller sees exactly what the shard said.
func TestRouterShard503(t *testing.T) {
	checkGoroutines(t)
	latched := fakeShard(t, "cars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "durability lost"})
	})
	healthy := fakeShard(t, "csjobs", nil)
	cls := tableClassifier{"q-cars": "cars", "q-jobs": "csjobs"}
	rt := newRouter(t, map[string]string{"cars": latched.URL, "csjobs": healthy.URL}, cls, time.Second)

	items := rt.AskBatch(context.Background(), "", []string{"q-jobs", "q-cars"})
	if items[0].Err != nil {
		t.Fatalf("healthy item failed: %v", items[0].Err)
	}
	var re *shard.RouteError
	if !errors.As(items[1].Err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("latched item error = %v, want RouteError with 503", items[1].Err)
	}
	p, err := rt.Ask(context.Background(), "", "q-cars")
	if err != nil {
		t.Fatalf("Ask should proxy the shard's 503, got error %v", err)
	}
	if p.Status != http.StatusServiceUnavailable {
		t.Fatalf("proxied status = %d", p.Status)
	}
}

// TestRouterShardRecovering: a shard mid-re-bootstrap reports
// "recovering" on /healthz; the cluster rollup degrades without going
// down, and the per-shard state is visible in the front tier's probe.
func TestRouterShardRecovering(t *testing.T) {
	checkGoroutines(t)
	recovering := fakeShard(t, "cars", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"state": "recovering"})
			return
		}
		http.NotFound(w, r)
	})
	healthy := fakeShard(t, "csjobs", nil)
	rt := newRouter(t, map[string]string{"cars": recovering.URL, "csjobs": healthy.URL}, nil, time.Second)
	front := httptest.NewServer(shard.NewServer(rt))
	t.Cleanup(front.Close)

	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		State  string `json:"state"`
		Shards []struct {
			URL   string `json:"url"`
			State string `json:"state"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.State != "degraded" {
		t.Fatalf("cluster health = %d %q, want 200 degraded", resp.StatusCode, health.State)
	}
	states := map[string]string{}
	for _, sh := range health.Shards {
		states[sh.URL] = sh.State
	}
	if states[recovering.URL] != "recovering" || states[healthy.URL] != "serving" {
		t.Fatalf("per-shard states = %v", states)
	}
	// This router has no classifier: a domain-less question must fail
	// with the typed error as documented — never broadcast.
	if _, err := rt.Ask(context.Background(), "", "anything"); err == nil {
		t.Fatal("classifier-less router answered a domain-less question")
	} else {
		var re *shard.RouteError
		if !errors.As(err, &re) {
			t.Fatalf("classifier-less error = %v, want *RouteError", err)
		}
	}
	items := rt.AskBatch(context.Background(), "", []string{"a", "b"})
	for i, item := range items {
		var re *shard.RouteError
		if !errors.As(item.Err, &re) {
			t.Fatalf("classifier-less batch item %d error = %v, want *RouteError", i, item.Err)
		}
	}
}

// TestRouterPartialBatchFailure: one shard is plain dead (connection
// refused). Its questions degrade with typed errors, every other
// question answers, and the gather preserves input order even with
// the failures interleaved.
func TestRouterPartialBatchFailure(t *testing.T) {
	checkGoroutines(t)
	dead := fakeShard(t, "cars", nil)
	deadURL := dead.URL
	dead.Close()
	okA := fakeShard(t, "csjobs", nil)
	okB := fakeShard(t, "jewellery", nil)
	cls := tableClassifier{"q-cars": "cars", "q-jobs": "csjobs", "q-gold": "jewellery"}
	rt := newRouter(t, map[string]string{
		"cars": deadURL, "csjobs": okA.URL, "jewellery": okB.URL,
	}, cls, time.Second)

	questions := []string{"q-jobs", "q-cars", "q-gold", "q-cars", "q-jobs"}
	items := rt.AskBatch(context.Background(), "", questions)
	for i, item := range items {
		if item.Index != i {
			t.Fatalf("item %d carries index %d", i, item.Index)
		}
		if questions[i] == "q-cars" {
			var re *shard.RouteError
			if !errors.As(item.Err, &re) || re.Domain != "cars" {
				t.Errorf("dead-shard item %d error = %v", i, item.Err)
			}
			continue
		}
		if item.Err != nil {
			t.Errorf("healthy item %d failed: %v", i, item.Err)
			continue
		}
		var res struct {
			Domain string `json:"domain"`
		}
		if err := json.Unmarshal(item.JSON, &res); err != nil || res.Domain != cls[questions[i]] {
			t.Errorf("item %d answered domain %q, want %q", i, res.Domain, cls[questions[i]])
		}
	}
	// An unknown domain is typed ErrNoShard, not a transport error.
	if _, err := rt.Ask(context.Background(), "boats", "any"); !errors.Is(err, shard.ErrNoShard) {
		t.Fatalf("unknown-domain error = %v, want ErrNoShard", err)
	}
}

// TestRouterBroadcastFallback: a question the classifier cannot place
// is broadcast to every hosted domain and the best answer wins —
// never an error while any shard answers.
func TestRouterBroadcastFallback(t *testing.T) {
	checkGoroutines(t)
	a := fakeShard(t, "cars", nil)
	// csjobs answers with more exact matches, so it must win the merge.
	b := fakeShard(t, "csjobs", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/ask" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"domain":"csjobs","exact_count":5,"answers":[{},{},{},{},{}]}`))
	})
	cls := tableClassifier{} // classifies nothing
	rt := newRouter(t, map[string]string{"cars": a.URL, "csjobs": b.URL}, cls, time.Second)

	p, err := rt.Ask(context.Background(), "", "complete gibberish")
	if err != nil {
		t.Fatalf("broadcast fallback errored: %v", err)
	}
	var res struct {
		Domain string `json:"domain"`
	}
	if err := json.Unmarshal(p.Body, &res); err != nil || res.Domain != "csjobs" {
		t.Fatalf("broadcast winner = %s", p.Body)
	}
	items := rt.AskBatch(context.Background(), "", []string{"gibberish one", "gibberish two"})
	for i, item := range items {
		if item.Err != nil || item.JSON == nil {
			t.Errorf("broadcast batch item %d: %v", i, item.Err)
		}
	}
}
