package shard_test

// Durability and replication for SHARDED stores: a shard with its own
// DataDir survives a SIGKILL-style abandon (no Close, no checkpoint)
// and recovers bit-identical answers, and a follower of a multi-domain
// shard receives and applies only that shard's operations.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/cqads"
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/shard/shardtest"
	"repro/internal/sqldb"
	"repro/internal/webui"
)

// askKey renders one answer set for comparison.
func askKey(t *testing.T, sys *cqads.System, domain, q string) string {
	t.Helper()
	res, err := sys.AskInDomain(domain, q)
	if err != nil {
		t.Fatalf("%q in %q: %v", q, domain, err)
	}
	type row struct {
		ID      sqldb.RowID
		Exact   bool
		RankSim float64
		Record  map[string]string
	}
	rows := make([]row, 0, len(res.Answers))
	for _, a := range res.Answers {
		rec := map[string]string{}
		for k, v := range a.Record {
			rec[k] = v.String()
		}
		rows = append(rows, row{ID: a.ID, Exact: a.Exact, RankSim: a.RankSim, Record: rec})
	}
	b, err := json.Marshal(struct {
		SQL  string
		N    int
		Rows []row
	}{res.SQL, res.ExactCount, rows})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

var shardProbes = map[string]string{
	"cars":      "cheapest honda",
	"jewellery": "gold necklace with diamond",
}

// TestShardRestartRecovery: kill a two-domain durable shard mid-life
// (no Close), reopen its DataDir, and require bit-identical answers
// including the WAL-tail ingests.
func TestShardRestartRecovery(t *testing.T) {
	opts := shardtest.Options(60)
	opts.Domains = []string{"cars", "jewellery"}
	opts.DataDir = t.TempDir()

	live, err := cqads.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	carsID, err := live.InsertAd("cars", map[string]sqldb.Value{
		"make": sqldb.String("honda"), "model": sqldb.String("civic"),
		"color": sqldb.String("red"), "price": sqldb.Number(3100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.InsertAd("jewellery", map[string]sqldb.Value{
		"piece": sqldb.String("necklace"), "metal": sqldb.String("gold"),
		"stone": sqldb.String("diamond"), "price": sqldb.Number(950),
	}); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for d, q := range shardProbes {
		want[d] = askKey(t, live, d, q)
	}

	// Kill: no Close, no Checkpoint — recovery must replay the WAL
	// tail through the shard-filtered path.
	recovered, err := cqads.Open(opts)
	if err != nil {
		t.Fatalf("recovering shard: %v", err)
	}
	defer recovered.Close()
	for d, q := range shardProbes {
		if got := askKey(t, recovered, d, q); got != want[d] {
			t.Errorf("%s answers diverge after restart\n got: %s\nwant: %s", d, got, want[d])
		}
	}
	// The WAL-tail insert is live on the recovered shard.
	tbl, _ := recovered.DB().TableForDomain("cars")
	if tbl.RecordMap(carsID) == nil {
		t.Error("WAL-tail cars insert lost across restart")
	}
	st := recovered.Status()
	if len(st.Domains) != 2 {
		t.Errorf("recovered shard hosts %d domains, want 2", len(st.Domains))
	}
	if !st.Persistence.Enabled {
		t.Error("recovered shard is not durable")
	}
}

// TestShardFollowerReceivesOnlyShardOps: a follower bootstrapped from
// a two-domain shard hosts exactly those domains, applies exactly the
// shard's operations, and answers bit-identically — replication of a
// shard ships only the hosted domains.
func TestShardFollowerReceivesOnlyShardOps(t *testing.T) {
	opts := shardtest.Options(60)
	opts.Domains = []string{"cars", "jewellery"}
	opts.DataDir = t.TempDir()

	primary, err := cqads.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primarySrv := httptest.NewServer(webui.NewServer(primary))
	defer primarySrv.Close()

	followerOpts := opts
	followerOpts.DataDir = ""
	f, err := replica.Connect(context.Background(), replica.Config{
		Primary: primarySrv.URL,
		Bootstrap: func(snapshot []byte) (*cqads.System, error) {
			return cqads.OpenFollower(followerOpts, snapshot)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Ingest into both hosted domains while the follower exists.
	for i := 0; i < 5; i++ {
		if _, err := primary.InsertAd("cars", map[string]sqldb.Value{
			"make": sqldb.String("honda"), "price": sqldb.Number(float64(5000 + i)),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := primary.InsertAd("jewellery", map[string]sqldb.Value{
			"metal": sqldb.String("silver"), "price": sqldb.Number(float64(100 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for f.System().AppliedSeq() < primary.AppliedSeq() {
		if _, err := f.SyncOnce(context.Background()); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}

	fs := f.System()
	if got := fs.Domains(); len(got) != 2 {
		t.Fatalf("follower hosts %v, want the shard's 2 domains", got)
	}
	st := fs.Status()
	if st.Replication.Role != core.RoleFollower || st.Replication.LagOps != 0 {
		t.Fatalf("follower replication status = %+v", st.Replication)
	}
	if len(st.Domains) != 2 {
		t.Fatalf("follower status reports %d domains, want 2", len(st.Domains))
	}
	// Every applied op landed in the shard's two tables, nowhere else:
	// the follower's other tables are still empty, and the hosted
	// live counts match the primary exactly.
	for _, d := range []string{"motorcycles", "clothing", "csjobs", "furniture", "foodcoupons", "instruments"} {
		if tbl, ok := fs.DB().TableForDomain(d); ok && tbl.Len() != 0 {
			t.Errorf("unhosted domain %q has %d rows on the follower", d, tbl.Len())
		}
	}
	for _, d := range []string{"cars", "jewellery"} {
		pt, _ := primary.DB().TableForDomain(d)
		ft, _ := fs.DB().TableForDomain(d)
		if pt.Len() != ft.Len() || pt.Slots() != ft.Slots() {
			t.Errorf("%s: primary %d/%d vs follower %d/%d (live/slots)",
				d, pt.Len(), pt.Slots(), ft.Len(), ft.Slots())
		}
		if got, want := askKey(t, fs, d, shardProbes[d]), askKey(t, primary, d, shardProbes[d]); got != want {
			t.Errorf("%s answers diverge between shard and its follower", d)
		}
	}
	// The follower inherits the shard's write fencing AND its hosting
	// boundary: a write lands 403 (read-only), not 421, but an
	// unhosted ask is still typed.
	if _, err := fs.InsertAd("cars", nil); err == nil {
		t.Error("follower accepted a direct write")
	}
	if _, err := fs.AskInDomain("motorcycles", "anything"); err == nil {
		t.Error("follower answered an unhosted domain")
	}
}
