// Package shardtest builds the topologies the cross-topology
// equivalence harness compares: a monolith System, sharded Systems
// hosting domain subsets, and full HTTP clusters (shard webui servers
// behind a front tier). Every builder derives from one cqads.Options
// value, so by construction each topology answers over the same
// deterministic corpus — the tests then assert the answers are
// bit-identical. It also generates the paper-sized 650-question
// workload (80 cars + 570 across the other seven domains, Sec. 5.1)
// used to drive the comparison.
package shardtest

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/cqads"
	"repro/internal/partition"
	"repro/internal/questions"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/webui"
)

// Options is the shared deterministic base every topology in one
// comparison must be built from.
func Options(adsPerDomain int) cqads.Options {
	return cqads.Options{Seed: 42, AdsPerDomain: adsPerDomain}
}

// Groups8 is the one-domain-per-shard partition.
func Groups8() [][]string {
	out := make([][]string, len(schema.DomainNames))
	for i, d := range schema.DomainNames {
		out[i] = []string{d}
	}
	return out
}

// Groups2 is the four-domains-per-shard partition.
func Groups2() [][]string {
	names := schema.DomainNames
	half := len(names) / 2
	return [][]string{
		append([]string(nil), names[:half]...),
		append([]string(nil), names[half:]...),
	}
}

// NewClassifier builds the front-tier routing classifier for opts —
// the construction a monolith with the same options classifies with.
func NewClassifier(tb testing.TB, opts cqads.Options) *cqads.QuestionClassifier {
	tb.Helper()
	qc, err := cqads.NewQuestionClassifier(opts)
	if err != nil {
		tb.Fatal(err)
	}
	return qc
}

// OpenMonolith builds the single-process topology.
func OpenMonolith(tb testing.TB, opts cqads.Options) *cqads.System {
	tb.Helper()
	opts.Domains = nil
	sys, err := cqads.Open(opts)
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// OpenShardSystems builds one System per group, each hosting only its
// group's domains.
func OpenShardSystems(tb testing.TB, opts cqads.Options, groups [][]string) []*cqads.System {
	tb.Helper()
	systems := make([]*cqads.System, len(groups))
	for i, group := range groups {
		o := opts
		o.Domains = group
		sys, err := cqads.Open(o)
		if err != nil {
			tb.Fatalf("opening shard %v: %v", group, err)
		}
		systems[i] = sys
	}
	return systems
}

// OpenPartitionSystems builds one System per hash slice of a single
// domain: count power-of-two partitions that together hold exactly the
// monolith's rows for that domain, each classifier-identical to the
// monolith (the partition filter runs after training). When
// opts.DataDir is set each partition stores under its own
// subdirectory, so the set is durable and can serve replication.
func OpenPartitionSystems(tb testing.TB, opts cqads.Options, domain string, count uint32) []*cqads.System {
	tb.Helper()
	systems := make([]*cqads.System, count)
	for i := uint32(0); i < count; i++ {
		o := opts
		o.Domains = []string{domain}
		o.Partitions = count
		o.PartitionIndex = i
		if o.DataDir != "" {
			o.DataDir = filepath.Join(opts.DataDir, fmt.Sprintf("part%d", i))
		}
		sys, err := cqads.Open(o)
		if err != nil {
			tb.Fatalf("opening partition h%d/%d of %s: %v", i, count, domain, err)
		}
		systems[i] = sys
	}
	return systems
}

// Workload generates the 650-question test workload from the
// monolith's tables, mirroring the paper's survey split: 80 cars
// questions plus 570 across the other seven domains. The questions
// (and their order) are deterministic in opts.Seed, and the shards'
// tables are byte-identical per domain, so one workload drives every
// topology.
func Workload(tb testing.TB, opts cqads.Options, sys *cqads.System) []string {
	tb.Helper()
	const (
		carsCount   = 80
		othersTotal = 570
	)
	seedBase := opts.Seed
	perOther := othersTotal / (len(schema.DomainNames) - 1)
	extra := othersTotal % (len(schema.DomainNames) - 1)
	var out []string
	for i, d := range schema.DomainNames {
		n := perOther
		if d == "cars" {
			n = carsCount
		} else if i <= extra {
			n++
		}
		tbl, ok := sys.DB().TableForDomain(d)
		if !ok {
			tb.Fatalf("monolith has no table for %q", d)
		}
		gen := questions.NewGenerator(tbl, seedBase+404+int64(i))
		for _, q := range gen.Generate(n, questions.DefaultOptions()) {
			out = append(out, q.Text)
		}
	}
	if len(out) != carsCount+othersTotal {
		tb.Fatalf("workload has %d questions, want %d", len(out), carsCount+othersTotal)
	}
	return out
}

// Cluster is one sharded HTTP topology: shard webui servers, the
// routing table over them, and the front tier.
type Cluster struct {
	Groups  [][]string
	Systems []*cqads.System
	Servers []*httptest.Server
	// Map is the domain → shard base URL routing table.
	Map    map[string]string
	Router *shard.Router
	Front  *httptest.Server
}

// StartCluster builds the shard Systems for groups, serves each
// behind a webui server, and fronts them with a shard.Server routing
// through cls.
func StartCluster(tb testing.TB, opts cqads.Options, groups [][]string, cls shard.Classifier) *Cluster {
	tb.Helper()
	c := &Cluster{
		Groups:  groups,
		Systems: OpenShardSystems(tb, opts, groups),
		Map:     make(map[string]string),
	}
	for i, sys := range c.Systems {
		srv := httptest.NewServer(webui.NewServer(sys))
		c.Servers = append(c.Servers, srv)
		for _, d := range groups[i] {
			c.Map[d] = srv.URL
		}
	}
	rt, err := shard.New(shard.Config{Shards: c.Map, Classifier: cls})
	if err != nil {
		c.Close()
		tb.Fatal(err)
	}
	c.Router = rt
	c.Front = httptest.NewServer(shard.NewServer(rt))
	tb.Cleanup(c.Close)
	return c
}

// PartitionCluster is one hash-partitioned HTTP topology: count webui
// servers each hosting one hash slice of Domain, one server hosting
// every other domain whole, and the front tier scattering over them.
type PartitionCluster struct {
	Domain string
	Count  uint32
	// Parts and PartServers are indexed by hash-slice index.
	Parts       []*cqads.System
	PartServers []*httptest.Server
	Rest        *cqads.System
	RestServer  *httptest.Server
	Map         shard.Map
	Router      *shard.Router
	Front       *httptest.Server
}

// StartPartitionCluster builds a cluster with domain hash-split count
// ways (count a power of two) and the remaining domains on one whole
// shard. newReb, when non-nil, builds the front tier's rebalance
// coordinator from the finished router (tests pass rebalance.New;
// shardtest stays ignorant of the concrete type).
func StartPartitionCluster(tb testing.TB, opts cqads.Options, domain string, count uint32, cls shard.Classifier, newReb func(*shard.Router) shard.Rebalancer) *PartitionCluster {
	tb.Helper()
	c := &PartitionCluster{
		Domain: domain,
		Count:  count,
		Parts:  OpenPartitionSystems(tb, opts, domain, count),
		Map:    shard.Map{},
	}
	tb.Cleanup(c.Close)
	for i, sys := range c.Parts {
		srv := httptest.NewServer(webui.NewServer(sys))
		c.PartServers = append(c.PartServers, srv)
		c.Map[domain] = append(c.Map[domain], shard.Group{
			Slice:   partition.Slice{Index: uint32(i), Count: count},
			Members: []string{srv.URL},
		})
	}
	var rest []string
	for _, d := range schema.DomainNames {
		if d != domain {
			rest = append(rest, d)
		}
	}
	o := opts
	o.Domains = rest
	if o.DataDir != "" {
		o.DataDir = filepath.Join(opts.DataDir, "rest")
	}
	restSys, err := cqads.Open(o)
	if err != nil {
		tb.Fatalf("opening rest shard: %v", err)
	}
	c.Rest = restSys
	c.RestServer = httptest.NewServer(webui.NewServer(restSys))
	for _, d := range rest {
		c.Map[d] = []shard.Group{{Members: []string{c.RestServer.URL}}}
	}
	rt, err := shard.New(shard.Config{Map: c.Map, Classifier: cls})
	if err != nil {
		tb.Fatal(err)
	}
	c.Router = rt
	var sopts shard.ServerOptions
	if newReb != nil {
		sopts.Rebalancer = newReb(rt)
	}
	c.Front = httptest.NewServer(shard.NewServerWith(rt, sopts))
	return c
}

// Close tears the partition cluster down; safe to call twice.
func (c *PartitionCluster) Close() {
	if c.Front != nil {
		c.Front.Close()
		c.Front = nil
	}
	if c.Router != nil {
		c.Router.Close()
		c.Router = nil
	}
	for i, srv := range c.PartServers {
		if srv != nil {
			srv.Close()
			c.PartServers[i] = nil
		}
	}
	if c.RestServer != nil {
		c.RestServer.Close()
		c.RestServer = nil
	}
	for _, sys := range c.Parts {
		if sys != nil {
			_ = sys.Close()
		}
	}
	c.Parts = nil
	if c.Rest != nil {
		_ = c.Rest.Close()
		c.Rest = nil
	}
}

// KillShard makes shard i unreachable (its listener closes), leaving
// the rest of the cluster untouched — the degraded-mode scenario.
func (c *Cluster) KillShard(i int) {
	if c.Servers[i] != nil {
		c.Servers[i].Close()
		c.Servers[i] = nil
	}
}

// Close tears the cluster down; safe to call twice (Cleanup does).
func (c *Cluster) Close() {
	if c.Front != nil {
		c.Front.Close()
		c.Front = nil
	}
	if c.Router != nil {
		c.Router.Close()
		c.Router = nil
	}
	for i := range c.Servers {
		c.KillShard(i)
	}
	for _, sys := range c.Systems {
		if sys != nil {
			_ = sys.Close()
		}
	}
	c.Systems = nil
}
