package rebalance_test

// The churn equivalence harness for live rebalancing: a 2-way
// hash-split cars cluster keeps serving pinned ingest and scattered
// batch questions while the coordinator splits h1/2 and moves h3/4 to
// a freshly attached follower. Zero queries may drop, every
// acknowledged write must survive, and afterwards the cluster must
// answer the cars workload byte-identically to a never-rebalanced
// monolith that ingested the same acknowledged ads.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/cqads"
	"repro/internal/adsgen"
	"repro/internal/partition"
	"repro/internal/replica"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/shard/rebalance"
	"repro/internal/shard/shardtest"
	"repro/internal/sqldb"
	"repro/internal/webui"
)

// adRecord renders a generated ad as the JSON record POST /api/ads
// accepts.
func adRecord(ad map[string]sqldb.Value) map[string]any {
	rec := make(map[string]any, len(ad))
	for col, v := range ad {
		if v.IsNull() {
			rec[col] = nil
			continue
		}
		rec[col] = v.String()
	}
	return rec
}

// pinnedPost ingests one ad under a caller-chosen id; both topologies
// under comparison replay the same ids so their rows stay identical.
func pinnedPost(base string, id uint64, body []byte) error {
	req, err := http.NewRequest(http.MethodPost, base+"/api/ads", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(webui.AdIDHeader, strconv.FormatUint(id, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	respBody, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("pinned ingest of id %d answered %d: %s", id, resp.StatusCode, respBody)
	}
	return nil
}

func TestLiveRebalanceUnderChurn(t *testing.T) {
	opts := shardtest.Options(40)
	opts.DataDir = t.TempDir() // partitions must serve snapshot + WAL
	qc := shardtest.NewClassifier(t, opts)
	cluster := shardtest.StartPartitionCluster(t, opts, "cars", 2, qc,
		func(rt *shard.Router) shard.Rebalancer { return rebalance.New(rt, nil) })
	sourceSys := cluster.Parts[1]
	sourceSrv := cluster.PartServers[1]

	// The rebalance target: a follower of the h1/2 source bootstrapped
	// from its h3/4-filtered snapshot section, tailing the source's WAL
	// live, fronted by a webui that can be promoted.
	fopts := opts
	fopts.Domains = []string{"cars"}
	fopts.Partitions = 4
	fopts.PartitionIndex = 3
	fopts.DataDir = ""
	follower, err := replica.StartFollower(context.Background(), replica.Config{
		Primary: sourceSrv.URL,
		Bootstrap: func(snapshot []byte) (*cqads.System, error) {
			return cqads.OpenFollower(fopts, snapshot)
		},
		SnapshotQuery: "partition=h3/4",
		Node:          "rebalance-target",
	})
	if err != nil {
		t.Fatalf("starting rebalance target: %v", err)
	}
	defer follower.Close()
	targetSrv := httptest.NewServer(webui.NewServerWith(follower.System(), webui.Options{Promoter: follower}))
	defer targetSrv.Close()

	// The monolith helpers must not share the cluster's DataDir: the
	// workload generator and the never-rebalanced reference both run in
	// memory.
	memOpts := opts
	memOpts.DataDir = ""

	// Cars questions for the churn readers.
	var carsQs []string
	for _, q := range shardtest.Workload(t, memOpts, shardtest.OpenMonolith(t, memOpts)) {
		if d, err := qc.ClassifyQuestion(q); err == nil && d == "cars" {
			carsQs = append(carsQs, q)
		}
		if len(carsQs) == 8 {
			break
		}
	}
	if len(carsQs) == 0 {
		t.Fatal("workload produced no cars questions")
	}
	batchReq, err := json.Marshal(map[string]any{"questions": carsQs})
	if err != nil {
		t.Fatal(err)
	}

	// Churn: one writer streams pinned cars ads through the front
	// tier's fan-out, two readers stream batch questions through the
	// scatter path. Every acknowledgement and every query outcome is
	// recorded; nothing may fail at any point of the move.
	gen := adsgen.NewGenerator(9009)
	ads := gen.Generate(schema.ByName("cars"), 400)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ackedMu sync.Mutex
	var acked []uint64
	ackedInSlice := func(sl partition.Slice) int {
		ackedMu.Lock()
		defer ackedMu.Unlock()
		n := 0
		for _, id := range acked {
			if sl.ContainsKey(id) {
				n++
			}
		}
		return n
	}
	var queries, churnErrs atomic.Int64
	errCh := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, ad := range ads {
			select {
			case <-stop:
				return
			default:
			}
			id := uint64(2_000_000 + i)
			body, err := json.Marshal(map[string]any{"domain": "cars", "record": adRecord(ad)})
			if err != nil {
				churnErrs.Add(1)
				errCh <- err
				return
			}
			if err := pinnedPost(cluster.Front.URL, id, body); err != nil {
				churnErrs.Add(1)
				errCh <- err
				return
			}
			ackedMu.Lock()
			acked = append(acked, id)
			ackedMu.Unlock()
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(cluster.Front.URL+"/api/ask/batch", "application/json", bytes.NewReader(batchReq))
				if err != nil {
					churnErrs.Add(1)
					errCh <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					churnErrs.Add(1)
					errCh <- fmt.Errorf("batch answered %d during churn: %s", resp.StatusCode, body)
					return
				}
				var out struct {
					Results []struct {
						Error string `json:"error"`
					} `json:"results"`
				}
				if err := json.Unmarshal(body, &out); err != nil || len(out.Results) != len(carsQs) {
					churnErrs.Add(1)
					errCh <- fmt.Errorf("batch shape broke during churn: %v: %s", err, body)
					return
				}
				for _, res := range out.Results {
					if res.Error != "" {
						churnErrs.Add(1)
						errCh <- fmt.Errorf("query dropped during churn: %s", res.Error)
						return
					}
				}
				queries.Add(int64(len(out.Results)))
			}
		}()
	}

	// Let churn establish, then start the move through the public API.
	time.Sleep(100 * time.Millisecond)
	moveReq, _ := json.Marshal(map[string]string{
		"domain": "cars", "source": "h1/2",
		"target_url": targetSrv.URL, "target_slice": "h3/4",
	})
	resp, err := http.Post(cluster.Front.URL+"/api/rebalance", "application/json", bytes.NewReader(moveReq))
	if err != nil {
		t.Fatal(err)
	}
	startBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /api/rebalance answered %d: %s", resp.StatusCode, startBody)
	}

	// The move's progress is observable in /api/status while it runs;
	// poll it to completion.
	type rebStatus struct {
		Rebalance struct {
			Active   bool `json:"active"`
			Progress struct {
				Step  string `json:"step"`
				Error string `json:"error"`
			} `json:"progress"`
		} `json:"rebalance"`
	}
	deadline := time.Now().Add(60 * time.Second)
	var st rebStatus
	stepsSeen := map[string]bool{}
	for {
		if time.Now().After(deadline) {
			t.Fatalf("rebalance did not finish; last status %+v", st)
		}
		resp, err := http.Get(cluster.Front.URL + "/api/status")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("cluster status: %v: %s", err, body)
		}
		stepsSeen[st.Rebalance.Progress.Step] = true
		if !st.Rebalance.Active && st.Rebalance.Progress.Step != "" && st.Rebalance.Progress.Step != "idle" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Rebalance.Progress.Step != "done" {
		t.Fatalf("rebalance ended in %q: %s", st.Rebalance.Progress.Step, st.Rebalance.Progress.Error)
	}

	// Keep churning on the new topology until writes have landed in
	// the moved slice — those route to the promoted target now.
	moved := partition.Slice{Index: 3, Count: 4}
	for ackedInSlice(moved) < 4 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if churnErrs.Load() != 0 {
		t.Fatalf("%d churn operations failed across the move", churnErrs.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("the readers never completed a batch — the harness measured nothing")
	}
	t.Logf("churn served %d queries and acked %d writes across the move; steps %v",
		queries.Load(), len(acked), stepsSeen)

	// The router map cut over: cars is now h0/2 + h1/4 + h3/4.
	parts, ok := cluster.Router.Partitions("cars")
	if !ok || len(parts) != 3 {
		t.Fatalf("post-move partition map has %d groups: %+v", len(parts), parts)
	}
	wantSlices := map[partition.Slice]bool{
		{Index: 0, Count: 2}: true, {Index: 1, Count: 4}: true, {Index: 3, Count: 4}: true,
	}
	for _, g := range parts {
		if !wantSlices[g.Slice] {
			t.Fatalf("unexpected post-move slice %s", g.Slice)
		}
		delete(wantSlices, g.Slice)
	}

	// Acked writes in the moved slice landed on the target; the source
	// retired to h1/4 and holds none of them.
	target := follower.System()
	targetTbl, ok := target.DB().TableForDomain("cars")
	if !ok {
		t.Fatal("target hosts no cars table")
	}
	retained := partition.Slice{Index: 1, Count: 4}
	var movedAcked int
	for _, id := range acked {
		if moved.ContainsKey(id) {
			movedAcked++
			if targetTbl.RecordMap(sqldb.RowID(id)) == nil {
				t.Errorf("acked write %d (slice %s) is missing from the target", id, moved)
			}
		}
	}
	if movedAcked == 0 {
		t.Error("no acked write hashed into the moved slice — the churn never exercised the move")
	}
	if got := sourceSys.PartitionSlice(); got != retained {
		t.Fatalf("source hosts %s after the move, want retirement to %s", got, retained)
	}

	// Equivalence: a never-rebalanced monolith that ingests the same
	// acked ads answers the full cars workload byte-identically to the
	// post-move cluster.
	mono := shardtest.OpenMonolith(t, memOpts)
	monoSrv := httptest.NewServer(webui.NewServer(mono))
	defer monoSrv.Close()
	for i, id := range acked {
		body, err := json.Marshal(map[string]any{"domain": "cars", "record": adRecord(ads[i])})
		if err != nil {
			t.Fatal(err)
		}
		if err := pinnedPost(monoSrv.URL, id, body); err != nil {
			t.Fatalf("reference ingest: %v", err)
		}
	}
	for _, q := range carsQs {
		monoResp, err := http.Get(monoSrv.URL + "/api/ask?q=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		monoBody, _ := io.ReadAll(monoResp.Body)
		monoResp.Body.Close()
		clResp, err := http.Get(cluster.Front.URL + "/api/ask?q=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		clBody, _ := io.ReadAll(clResp.Body)
		clResp.Body.Close()
		if !bytes.Equal(monoBody, clBody) {
			t.Errorf("post-move answer diverges from never-rebalanced reference on %q\n got: %s\nwant: %s", q, clBody, monoBody)
		}
	}
}
