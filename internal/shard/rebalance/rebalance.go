// Package rebalance drives live hash-partition moves for a shard
// cluster: splitting one slice of a partitioned domain and handing a
// child slice to a new owner, with zero dropped queries and every
// quorum-acked write preserved.
//
// The move choreography, given source slice S with children L and R
// (R moving to the target):
//
//  1. The target node is started by the operator as a follower of the
//     source with `-replicate-from <source> -partition R`: it
//     bootstraps from the source's R-filtered snapshot section and
//     tails the source's (unfiltered) WAL, applying only R's ops.
//  2. The coordinator polls the target's /healthz until it is serving
//     with no replication lag.
//  3. The router fences writes to R only — queued, not erroring — and
//     drains the overlapping writes already in flight. Queries are
//     never fenced: they keep scattering to the source, which still
//     holds all of S.
//  4. The source's WAL position is read; the coordinator waits until
//     the target has applied at least that far. Every write the
//     source ever acknowledged — quorum-acked ones included — is now
//     on the target.
//  5. The target is promoted writable, the router map cuts S over to
//     {L→source, R→target} atomically, and the source retires to L,
//     dropping R's rows and refusing R's keys (421) from then on.
//  6. The fence lifts; queued R writes flow to the target.
//
// Any post-fence failure unfences and leaves the map untouched — the
// source still owns S, so the move is abandonable at every step before
// the cutover, and the cutover itself is a single atomic map swap.
package rebalance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/partition"
	"repro/internal/shard"
)

// DefaultMoveTimeout bounds one whole move, catch-up included.
const DefaultMoveTimeout = 2 * time.Minute

// pollInterval is the catch-up polling cadence. Short: the fence is
// held across the final wait, so every interval here is queued-write
// latency during cutover.
const pollInterval = 10 * time.Millisecond

// Coordinator implements shard.Rebalancer: one move at a time,
// progress observable through Status (the front tier's /api/status
// embeds it).
type Coordinator struct {
	rt     *shard.Router
	client *http.Client

	mu      sync.Mutex
	active  bool
	state   progress
	timeout time.Duration
}

// progress is the JSON-rendered move state.
type progress struct {
	Domain      string `json:"domain,omitempty"`
	Source      string `json:"source,omitempty"`
	TargetSlice string `json:"target_slice,omitempty"`
	TargetURL   string `json:"target_url,omitempty"`
	// Step is the phase the move is in: "catch-up", "fence", "drain",
	// "promote", "cutover", "retire", "done", or "failed".
	Step  string `json:"step"`
	Error string `json:"error,omitempty"`
}

// New builds a Coordinator over the router it will cut over. client
// nil uses a default with DefaultMoveTimeout as the per-request bound.
func New(rt *shard.Router, client *http.Client) *Coordinator {
	if client == nil {
		client = &http.Client{Timeout: DefaultMoveTimeout}
	}
	return &Coordinator{rt: rt, client: client, timeout: DefaultMoveTimeout, state: progress{Step: "idle"}}
}

// Status implements shard.Rebalancer.
func (c *Coordinator) Status() (json.RawMessage, bool) {
	c.mu.Lock()
	st := c.state
	active := c.active
	c.mu.Unlock()
	body, err := json.Marshal(st)
	if err != nil {
		return json.RawMessage(`{}`), active
	}
	return body, active
}

// Start implements shard.Rebalancer: validate, admit, and run the move
// in the background.
func (c *Coordinator) Start(req shard.RebalanceRequest) error {
	source, err := partition.Parse(req.Source)
	if err != nil {
		return fmt.Errorf("rebalance: bad source slice: %w", err)
	}
	target, err := partition.Parse(req.TargetSlice)
	if err != nil {
		return fmt.Errorf("rebalance: bad target slice: %w", err)
	}
	left, right := source.Split()
	var retain partition.Slice
	switch target {
	case left:
		retain = right
	case right:
		retain = left
	default:
		return fmt.Errorf("rebalance: target slice %s is not a direct child of source %s (children: %s, %s)",
			target, source, left, right)
	}
	if req.TargetURL == "" {
		return fmt.Errorf("rebalance: missing target_url")
	}
	parts, ok := c.rt.Partitions(req.Domain)
	if !ok {
		return fmt.Errorf("rebalance: unknown domain %q", req.Domain)
	}
	var sourceMembers []string
	for _, g := range parts {
		if g.Slice == source {
			sourceMembers = g.Members
		}
	}
	if sourceMembers == nil {
		return fmt.Errorf("rebalance: domain %q has no partition %s", req.Domain, source)
	}
	c.mu.Lock()
	if c.active {
		c.mu.Unlock()
		return fmt.Errorf("rebalance: a move is already running")
	}
	c.active = true
	c.state = progress{Domain: req.Domain, Source: req.Source,
		TargetSlice: req.TargetSlice, TargetURL: req.TargetURL, Step: "catch-up"}
	c.mu.Unlock()
	go c.run(req, source, target, retain, sourceMembers)
	return nil
}

// setStep publishes the move's phase.
func (c *Coordinator) setStep(step string) {
	c.mu.Lock()
	c.state.Step = step
	c.mu.Unlock()
}

// finish publishes the terminal state and re-opens the coordinator.
func (c *Coordinator) finish(err error) {
	c.mu.Lock()
	if err != nil {
		c.state.Step = "failed"
		c.state.Error = err.Error()
	} else {
		c.state.Step = "done"
	}
	c.active = false
	c.mu.Unlock()
}

// run executes the move choreography.
func (c *Coordinator) run(req shard.RebalanceRequest, source, target, retain partition.Slice, sourceMembers []string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	fenced := false
	defer func() {
		if fenced {
			c.rt.Unfence(req.Domain)
		}
	}()

	// 1. The target must be a caught-up serving follower before any
	// write is delayed — the fence window is bounded by the residual
	// lag, not the full transfer.
	if err := c.waitCaughtUp(ctx, req.TargetURL, 0); err != nil {
		c.finish(fmt.Errorf("target catch-up: %w", err))
		return
	}

	// 2. Fence just the moving slice and drain in-flight writes.
	c.setStep("fence")
	if err := c.rt.FenceWrites(ctx, req.Domain, target); err != nil {
		c.finish(fmt.Errorf("fencing %s: %w", target, err))
		return
	}
	fenced = true

	// 3. With the fence up, the source's WAL position is final for the
	// moving slice; wait for the target to apply everything.
	c.setStep("drain")
	sourceURL, err := c.rt.PartitionLeader(ctx, req.Domain, source)
	if err != nil {
		c.finish(fmt.Errorf("resolving source leader: %w", err))
		return
	}
	seq, err := c.sourceSeq(ctx, sourceURL)
	if err != nil {
		c.finish(fmt.Errorf("reading source seq: %w", err))
		return
	}
	if err := c.waitApplied(ctx, req.TargetURL, seq); err != nil {
		c.finish(fmt.Errorf("target apply to seq %d: %w", seq, err))
		return
	}

	// 4. Promote the target writable. From here the move must go
	// forward — the target would otherwise accept writes nobody routes
	// to it — but every remaining step is local to this process.
	c.setStep("promote")
	if err := c.post(ctx, req.TargetURL, "/api/repl/promote", nil); err != nil {
		c.finish(fmt.Errorf("promoting target: %w", err))
		return
	}

	// 5. Cut the router over atomically.
	c.setStep("cutover")
	repl := []shard.Group{
		{Slice: retain, Members: sourceMembers},
		{Slice: target, Members: []string{req.TargetURL}},
	}
	if err := c.rt.SwapPartition(req.Domain, source, repl); err != nil {
		c.finish(fmt.Errorf("cutover: %w", err))
		return
	}

	// 6. Retire the moved rows from the source. Failure here is
	// non-fatal for correctness — the source merely holds dead rows the
	// scatter filter already hides — but it is surfaced as the move's
	// outcome so the operator retries the retirement.
	c.setStep("retire")
	body, _ := json.Marshal(map[string]string{"slice": retain.String()})
	if err := c.post(ctx, sourceURL, "/api/partition/retire", body); err != nil {
		c.finish(fmt.Errorf("retiring source to %s (rows already cut over; retry retirement): %w", retain, err))
		return
	}
	c.finish(nil)
}

// health is the slice of /healthz the coordinator reads.
type health struct {
	State      string `json:"state"`
	AppliedSeq uint64 `json:"applied_seq"`
	LagOps     uint64 `json:"lag_ops"`
}

// getHealth polls one node's /healthz.
func (c *Coordinator) getHealth(ctx context.Context, base string) (health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return health{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return health{}, err
	}
	defer resp.Body.Close()
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return health{}, fmt.Errorf("decoding healthz: %w", err)
	}
	return h, nil
}

// waitCaughtUp polls until the target serves with lag at most maxLag.
func (c *Coordinator) waitCaughtUp(ctx context.Context, base string, maxLag uint64) error {
	for {
		h, err := c.getHealth(ctx, base)
		if err == nil && h.State == "serving" && h.LagOps <= maxLag {
			return nil
		}
		if err := sleep(ctx, pollInterval); err != nil {
			return err
		}
	}
}

// waitApplied polls until the target has applied at least seq.
func (c *Coordinator) waitApplied(ctx context.Context, base string, seq uint64) error {
	for {
		h, err := c.getHealth(ctx, base)
		if err == nil && h.AppliedSeq >= seq {
			return nil
		}
		if err := sleep(ctx, pollInterval); err != nil {
			return err
		}
	}
}

// sourceSeq reads the source's durable WAL position from /api/status.
func (c *Coordinator) sourceSeq(ctx context.Context, base string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/status", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Persistence struct {
			Seq uint64 `json:"seq"`
		} `json:"persistence"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, fmt.Errorf("decoding status: %w", err)
	}
	return st.Persistence.Seq, nil
}

// post issues one JSON POST and requires a 2xx answer.
func (c *Coordinator) post(ctx context.Context, base, path string, body []byte) error {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, reader)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s answered %d: %s", path, resp.StatusCode, e.Error)
	}
	return nil
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
