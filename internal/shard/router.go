package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/partition"
	"repro/internal/webui"
)

// DefaultTimeout bounds one upstream shard call when Config.Client is
// nil.
const DefaultTimeout = 15 * time.Second

// DefaultProbeTimeout bounds one /healthz or /api/status probe. Kept
// far below the data-path timeout: a single wedged shard must not
// stall the whole cluster health view past a load balancer's own
// probe deadline.
const DefaultProbeTimeout = 2 * time.Second

// Config wires a Router.
type Config struct {
	// Map is a parsed shard map (ParseMap produces this): every hosted
	// domain to its partitions, each a hash slice with its replica-set
	// members. This is the general form; Shards and Groups below are
	// single-partition conveniences layered onto it.
	Map Map
	// Shards maps each hosted domain to the base URL of the single
	// shard serving it. For replica-set groups use Groups instead;
	// setting a domain in more than one of Map/Shards/Groups is an
	// error.
	Shards map[string]string
	// Groups maps each hosted domain to its owning shard's replica-set
	// member URLs. A one-member group is routed to statically; a
	// multi-member group makes the router resolve and follow the set's
	// elected leader through GET /api/repl/leader — lazily, with
	// invalidate-and-retry on failure, so elections propagate exactly
	// when traffic notices them.
	Groups map[string][]string
	// Classifier routes questions without an explicit domain; nil
	// makes such requests fail with a RouteError instead of routing.
	Classifier Classifier
	// Client issues every upstream request; nil uses a client with
	// Timeout (or DefaultTimeout).
	Client *http.Client
	// Timeout configures the default client; ignored when Client is
	// set. 0 means DefaultTimeout.
	Timeout time.Duration
	// ProbeTimeout bounds each ClusterStatus/ClusterHealth probe; 0
	// means DefaultProbeTimeout.
	ProbeTimeout time.Duration
}

// partState is one partition of a domain as the router sees it: the
// hash slice it owns and the replica set serving it. partStates are
// immutable after construction — rebalancing replaces them wholesale
// under the domain's lock — so the read path copies a slice header and
// never takes the domain lock while a request is in flight.
type partState struct {
	slice   partition.Slice
	members []string
	key     string          // "|"-joined member list, the Owner form
	watch   *failover.Watch // leader watcher (multi-member sets only)
	lat     *groupLatency   // read-latency profile, shared per member set
}

// inflightWrite is one admitted, not-yet-completed forwarded write,
// tracked so a fence can drain the writes that overlap a moving slice.
type inflightWrite struct {
	key    uint64
	hasKey bool // false: the write's key is unknown (unpinned insert)
}

// domainState is a domain's live routing state. The partition list is
// replaced atomically under mu on rebalance cutover; writes pass
// through a fence gate so a rebalance can stop traffic to just the
// moving slice, briefly, without erroring it.
type domainState struct {
	mu sync.Mutex
	// parts is sorted by (slice.Count, slice.Index) and always tiles
	// the whole hash space exactly once.
	parts []*partState
	rr    uint64 // round-robin cursor for unpinned ingest fan-out
	// Fence state: while fenced, writes overlapping fence (and all
	// unpinned inserts, whose keys are unknown) queue on fenceCh
	// instead of erroring. fenceCh is closed by Unfence.
	fenced  bool
	fence   partition.Slice
	fenceCh chan struct{}
	// inflight tracks admitted writes; waitDone (when non-nil) is
	// closed on the next write completion so a drainer can re-check.
	inflight map[uint64]inflightWrite
	nextTok  uint64
	waitDone chan struct{}
}

// snapshot returns the current partition list; the returned slice is
// never mutated.
func (ds *domainState) snapshot() []*partState {
	ds.mu.Lock()
	parts := ds.parts
	ds.mu.Unlock()
	return parts
}

// admitWrite gates one forwarded write on the domain's fence: writes
// overlapping the fenced slice — and unpinned inserts, whose target
// key is not known until a shard assigns it — wait for Unfence rather
// than failing. The returned token must be released when the upstream
// call settles.
func (ds *domainState) admitWrite(ctx context.Context, key uint64, hasKey bool) (uint64, error) {
	for {
		ds.mu.Lock()
		if ds.fenced && (!hasKey || ds.fence.ContainsKey(key)) {
			ch := ds.fenceCh
			ds.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		tok := ds.nextTok
		ds.nextTok++
		if ds.inflight == nil {
			ds.inflight = make(map[uint64]inflightWrite)
		}
		ds.inflight[tok] = inflightWrite{key: key, hasKey: hasKey}
		ds.mu.Unlock()
		return tok, nil
	}
}

// release marks an admitted write settled and wakes any drainer.
func (ds *domainState) release(tok uint64) {
	ds.mu.Lock()
	delete(ds.inflight, tok)
	if ds.waitDone != nil {
		close(ds.waitDone)
		ds.waitDone = nil
	}
	ds.mu.Unlock()
}

// drain blocks until no admitted write overlapping sl is in flight.
// Called after the fence is up, so the overlapping population only
// shrinks.
func (ds *domainState) drain(ctx context.Context, sl partition.Slice) error {
	for {
		ds.mu.Lock()
		busy := false
		for _, w := range ds.inflight {
			if !w.hasKey || sl.ContainsKey(w.key) {
				busy = true
				break
			}
		}
		if !busy {
			ds.mu.Unlock()
			return nil
		}
		if ds.waitDone == nil {
			ds.waitDone = make(chan struct{})
		}
		ch := ds.waitDone
		ds.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Router owns the routing table of a shard cluster: classify once,
// forward to the owner, scatter partitioned domains and merge, and
// scatter-gather batches and cluster probes. It is safe for concurrent
// use and spawns no background goroutines — every scatter joins before
// its method returns.
type Router struct {
	states  map[string]*domainState
	domains []string // hosted domains, sorted
	cls     Classifier
	client  *http.Client

	// reg shares leader watchers and latency profiles across every
	// partState with the same member set — domains owned by the same
	// replica set re-resolve an election once, and a set's hedge delay
	// is learned from all its traffic. The registry only grows
	// (latency counts are monotonic, so retired sets keep reporting).
	regMu    sync.Mutex
	regWatch map[string]*failover.Watch
	regLat   map[string]*groupLatency

	probeTimeout time.Duration
}

// New builds a Router over a parsed shard map.
func New(cfg Config) (*Router, error) {
	m := make(Map, len(cfg.Map)+len(cfg.Groups)+len(cfg.Shards))
	for domain, groups := range cfg.Map {
		m[domain] = groups
	}
	for domain, members := range cfg.Groups {
		if _, dup := m[domain]; dup {
			return nil, fmt.Errorf("shard: domain %q is mapped more than once across Map/Shards/Groups", domain)
		}
		m[domain] = []Group{{Members: members}}
	}
	for domain, base := range cfg.Shards {
		if _, dup := m[domain]; dup {
			return nil, fmt.Errorf("shard: domain %q is mapped more than once across Map/Shards/Groups", domain)
		}
		m[domain] = []Group{{Members: []string{base}}}
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("shard: Config.Map, Config.Shards and Config.Groups are all empty")
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = DefaultTimeout
		}
		client = &http.Client{Timeout: timeout}
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = DefaultProbeTimeout
	}
	r := &Router{
		states:       make(map[string]*domainState, len(m)),
		cls:          cfg.Classifier,
		client:       client,
		regWatch:     make(map[string]*failover.Watch),
		regLat:       make(map[string]*groupLatency),
		probeTimeout: probeTimeout,
	}
	for domain, groups := range m {
		parts, err := r.buildParts(domain, groups)
		if err != nil {
			return nil, err
		}
		r.states[domain] = &domainState{parts: parts}
		r.domains = append(r.domains, domain)
	}
	sort.Strings(r.domains)
	return r, nil
}

// buildParts turns one domain's groups into validated partStates: every
// member set non-empty, every slice valid, and the slices tiling the
// whole hash space exactly once. A single group with the zero Slice is
// normalized to the whole space (the unpartitioned form).
func (r *Router) buildParts(domain string, groups []Group) ([]*partState, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("shard: domain %q has no groups", domain)
	}
	parts := make([]*partState, 0, len(groups))
	for _, g := range groups {
		sl := g.Slice
		if sl == (partition.Slice{}) && len(groups) == 1 {
			sl = partition.Whole()
		}
		if err := sl.Validate(); err != nil {
			return nil, fmt.Errorf("shard: domain %q: %w", domain, err)
		}
		if len(g.Members) == 0 {
			return nil, fmt.Errorf("shard: domain %q slice %s has an empty replica set", domain, sl)
		}
		parts = append(parts, r.newPart(sl, g.Members))
	}
	if err := validateCover(domain, parts); err != nil {
		return nil, err
	}
	return parts, nil
}

// validateCover checks that parts tile the whole hash space exactly
// once (pairwise disjoint, fractions summing to one) and sorts them
// canonically.
func validateCover(domain string, parts []*partState) error {
	sort.Slice(parts, func(a, b int) bool {
		if parts[a].slice.Count != parts[b].slice.Count {
			return parts[a].slice.Count < parts[b].slice.Count
		}
		return parts[a].slice.Index < parts[b].slice.Index
	})
	var total uint64
	for i, p := range parts {
		total += uint64(1<<32) / uint64(p.slice.Count)
		for _, q := range parts[:i] {
			if p.slice.Overlaps(q.slice) {
				return fmt.Errorf("shard: domain %q slices %s and %s overlap", domain, q.slice, p.slice)
			}
		}
	}
	if total != 1<<32 {
		return fmt.Errorf("shard: domain %q slices do not cover the whole hash space", domain)
	}
	return nil
}

// newPart interns the member set's shared watcher and latency profile
// and wraps them with the slice.
func (r *Router) newPart(sl partition.Slice, members []string) *partState {
	key := strings.Join(members, "|")
	r.regMu.Lock()
	defer r.regMu.Unlock()
	g, ok := r.regLat[key]
	if !ok {
		g = &groupLatency{key: key}
		r.regLat[key] = g
	}
	var w *failover.Watch
	if len(members) > 1 {
		w, ok = r.regWatch[key]
		if !ok {
			w = failover.NewWatch(members, r.client)
			r.regWatch[key] = w
		}
	}
	return &partState{slice: sl, members: members, key: key, watch: w, lat: g}
}

// Close releases pooled upstream connections.
func (r *Router) Close() { r.client.CloseIdleConnections() }

// Domains lists the hosted domains, sorted.
func (r *Router) Domains() []string {
	out := make([]string, len(r.domains))
	copy(out, r.domains)
	return out
}

// partsOf snapshots a domain's current partitions.
func (r *Router) partsOf(domain string) ([]*partState, bool) {
	ds, ok := r.states[domain]
	if !ok {
		return nil, false
	}
	return ds.snapshot(), true
}

// partFor picks the partition owning an ad key.
func partFor(parts []*partState, key uint64) *partState {
	for _, p := range parts {
		if p.slice.ContainsKey(key) {
			return p
		}
	}
	return nil
}

// Owner reports who hosts a domain: the "|"-joined member list for an
// unpartitioned domain (the same form ParseMap accepts), or the
// slice-annotated list "h0/2:a|b,h1/2:c" for a partitioned one.
func (r *Router) Owner(domain string) (string, bool) {
	parts, ok := r.partsOf(domain)
	if !ok {
		return "", false
	}
	if len(parts) == 1 && parts[0].slice.IsWhole() {
		return parts[0].key, true
	}
	entries := make([]string, len(parts))
	for i, p := range parts {
		entries[i] = p.slice.String() + ":" + p.key
	}
	return strings.Join(entries, ","), true
}

// Partitions reports a domain's current partition layout.
func (r *Router) Partitions(domain string) ([]Group, bool) {
	parts, ok := r.partsOf(domain)
	if !ok {
		return nil, false
	}
	out := make([]Group, len(parts))
	for i, p := range parts {
		out[i] = Group{Slice: p.slice, Members: append([]string(nil), p.members...)}
	}
	return out, true
}

// PartitionLeader resolves the base URL currently serving writes for
// one partition of a domain — the rebalance coordinator uses it to
// address the source of a move.
func (r *Router) PartitionLeader(ctx context.Context, domain string, sl partition.Slice) (string, error) {
	parts, ok := r.partsOf(domain)
	if !ok {
		return "", ErrNoShard
	}
	for _, p := range parts {
		if p.slice == sl {
			return r.leaderOf(ctx, p)
		}
	}
	return "", fmt.Errorf("shard: domain %q has no partition %s", domain, sl)
}

// FenceWrites raises the domain's write fence over sl and drains the
// overlapping writes already in flight: when it returns nil, no write
// that could land in sl is outstanding and none will be admitted until
// Unfence. Queries are never fenced. One fence at a time per domain.
func (r *Router) FenceWrites(ctx context.Context, domain string, sl partition.Slice) error {
	ds, ok := r.states[domain]
	if !ok {
		return ErrNoShard
	}
	ds.mu.Lock()
	if ds.fenced {
		ds.mu.Unlock()
		return fmt.Errorf("shard: domain %q is already fenced", domain)
	}
	ds.fenced = true
	ds.fence = sl
	ds.fenceCh = make(chan struct{})
	ds.mu.Unlock()
	return ds.drain(ctx, sl)
}

// Unfence drops the domain's write fence, releasing queued writes.
func (r *Router) Unfence(domain string) {
	ds, ok := r.states[domain]
	if !ok {
		return
	}
	ds.mu.Lock()
	if ds.fenced {
		ds.fenced = false
		close(ds.fenceCh)
		ds.fenceCh = nil
	}
	ds.mu.Unlock()
}

// SwapPartition atomically replaces the partition owning old with repl
// — the rebalance cutover. The replacement slices must tile exactly
// old's key space, so the domain-wide invariant (whole space, exactly
// once) is preserved by construction. In-flight requests finish
// against the partition list they snapshotted; the fence (held by the
// caller across the swap) is what keeps moving-slice writes out of
// that window.
func (r *Router) SwapPartition(domain string, old partition.Slice, repl []Group) error {
	ds, ok := r.states[domain]
	if !ok {
		return ErrNoShard
	}
	if len(repl) == 0 {
		return fmt.Errorf("shard: replacing %s of %q with nothing", old, domain)
	}
	newParts := make([]*partState, 0, len(repl))
	var total uint64
	for i, g := range repl {
		if err := g.Slice.Validate(); err != nil {
			return fmt.Errorf("shard: domain %q: %w", domain, err)
		}
		if !g.Slice.SubsetOf(old) {
			return fmt.Errorf("shard: replacement slice %s is not inside %s", g.Slice, old)
		}
		if len(g.Members) == 0 {
			return fmt.Errorf("shard: replacement slice %s has an empty replica set", g.Slice)
		}
		for _, q := range repl[:i] {
			if g.Slice.Overlaps(q.Slice) {
				return fmt.Errorf("shard: replacement slices %s and %s overlap", q.Slice, g.Slice)
			}
		}
		total += uint64(1<<32) / uint64(g.Slice.Count)
		newParts = append(newParts, r.newPart(g.Slice, g.Members))
	}
	if total != uint64(1<<32)/uint64(old.Count) {
		return fmt.Errorf("shard: replacement slices do not cover %s exactly", old)
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	idx := -1
	for i, p := range ds.parts {
		if p.slice == old {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("shard: domain %q has no partition %s", domain, old)
	}
	parts := make([]*partState, 0, len(ds.parts)-1+len(newParts))
	parts = append(parts, ds.parts[:idx]...)
	parts = append(parts, ds.parts[idx+1:]...)
	parts = append(parts, newParts...)
	sort.Slice(parts, func(a, b int) bool {
		if parts[a].slice.Count != parts[b].slice.Count {
			return parts[a].slice.Count < parts[b].slice.Count
		}
		return parts[a].slice.Index < parts[b].slice.Index
	})
	ds.parts = parts
	return nil
}

// leaderOf resolves the base URL traffic for a partition should hit
// right now: the sole member of a static set, or the replica set's
// current leader (cached by the set's watcher until invalidated).
func (r *Router) leaderOf(ctx context.Context, p *partState) (string, error) {
	if p.watch == nil {
		return p.members[0], nil
	}
	return p.watch.Resolve(ctx)
}

// doRouted issues one request to a partition, following leadership:
// resolve the leader, send, and on a failure that smells like a stale
// leader — the node is unreachable, or refuses the write read-only
// (403) — invalidate the cached leader, re-resolve, and retry once.
// Static single-member sets never probe and never retry, preserving
// the pre-replica-set behavior exactly. The base actually answering is
// returned for error attribution.
func (r *Router) doRouted(ctx context.Context, method string, p *partState, pathAndQuery string, body []byte, contentType string, hdr map[string]string) (base string, status int, respBody []byte, err error) {
	base, err = r.leaderOf(ctx, p)
	if err != nil {
		return "", 0, nil, err
	}
	status, respBody, err = r.do(ctx, method, base, pathAndQuery, body, contentType, hdr)
	if p.watch == nil || (err == nil && status != http.StatusForbidden) {
		return base, status, respBody, err
	}
	p.watch.Invalidate(base)
	next, rerr := p.watch.Resolve(ctx)
	if rerr != nil || next == base {
		return base, status, respBody, err
	}
	base = next
	status, respBody, err = r.do(ctx, method, base, pathAndQuery, body, contentType, hdr)
	return base, status, respBody, err
}

// Route classifies a question into its owning domain.
func (r *Router) Route(question string) (string, error) {
	if r.cls == nil {
		return "", fmt.Errorf("shard: no classifier configured; pass an explicit domain")
	}
	return r.cls.ClassifyQuestion(question)
}

// Proxied is one upstream answer: the HTTP status and JSON body,
// byte-identical to what a monolith would have served — proxied
// verbatim from the owning shard, or (for a partitioned domain)
// re-encoded from the deterministic merge of the partitions' scatter
// parts, which webui keeps byte-compatible by construction.
type Proxied struct {
	// Domain the request was routed to ("" for a broadcast merge).
	Domain string
	// Status is the shard's HTTP status code.
	Status int
	// Body is the shard's response body.
	Body []byte
}

// Ask answers one question through the cluster: classify (when domain
// is empty), forward GET /api/ask to the owning shard — scattering to
// every partition and merging when the domain is hash-partitioned —
// and return the response. A question the classifier cannot place
// falls back to broadcast-and-merge across every hosted domain.
// Errors are always *RouteError.
func (r *Router) Ask(ctx context.Context, domain, question string) (*Proxied, error) {
	if domain == "" {
		if r.cls == nil {
			// A missing classifier is a configuration fault, not an
			// unclassifiable question: fail as documented instead of
			// silently broadcasting every query N-wide.
			_, err := r.Route(question)
			return nil, &RouteError{Err: err}
		}
		d, err := r.Route(question)
		if err != nil {
			return r.askBroadcast(ctx, question, err)
		}
		domain = d
	}
	return r.askOwned(ctx, domain, question)
}

// askOwned answers one question in one domain: proxied verbatim from
// the single owning shard, or scattered and merged across a
// partitioned domain's slices. Reads hedge a slow or failing member
// against another member of its replica set either way.
func (r *Router) askOwned(ctx context.Context, domain, question string) (*Proxied, error) {
	parts, ok := r.partsOf(domain)
	if !ok {
		return nil, &RouteError{Domain: domain, Err: ErrNoShard}
	}
	q := url.Values{"domain": {domain}, "q": {question}}
	path := "/api/ask?" + q.Encode()
	if len(parts) == 1 && parts[0].slice.IsWhole() {
		base, status, body, err := r.doRead(ctx, http.MethodGet, parts[0], path, nil, "", nil)
		if err != nil {
			return nil, &RouteError{Domain: domain, Shard: base, Err: err}
		}
		return &Proxied{Domain: domain, Status: status, Body: body}, nil
	}
	merged, rerr := r.scatterAsk(ctx, domain, path, parts)
	if rerr != nil {
		return nil, rerr
	}
	body, err := encodeAPIResult(webui.APIResultFromScatter(merged))
	if err != nil {
		return nil, &RouteError{Domain: domain, Err: err}
	}
	return &Proxied{Domain: domain, Status: http.StatusOK, Body: body}, nil
}

// wirePart is the scatter body each partition serves.
type wirePart = core.ScatterPart[map[string]string]

// scatterAsk sends one ask to every partition (each request addressed
// to the partition's slice via the scatter header) and merges the
// parts. Any partition failing fails the question — a partial merge
// would silently drop that slice's rows, which is exactly the
// wrong-answer class the harness exists to rule out.
func (r *Router) scatterAsk(ctx context.Context, domain, path string, parts []*partState) (*wirePart, *RouteError) {
	type leg struct {
		part *wirePart
		rerr *RouteError
	}
	legs := make([]leg, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *partState) {
			defer wg.Done()
			hdr := map[string]string{webui.ScatterHeader: p.slice.String()}
			base, status, body, err := r.doRead(ctx, http.MethodGet, p, path, nil, "", hdr)
			if err != nil {
				legs[i].rerr = &RouteError{Domain: domain, Shard: base, Err: err}
				return
			}
			if status != http.StatusOK {
				legs[i].rerr = &RouteError{Domain: domain, Shard: base, Status: status,
					Err: fmt.Errorf("scatter refused: %s", bytes.TrimSpace(body))}
				return
			}
			var part wirePart
			if err := json.Unmarshal(body, &part); err != nil {
				legs[i].rerr = &RouteError{Domain: domain, Shard: base, Status: status,
					Err: fmt.Errorf("decoding scatter part: %w", err)}
				return
			}
			legs[i].part = &part
		}(i, p)
	}
	wg.Wait()
	collected := make([]*wirePart, len(legs))
	for i, l := range legs {
		if l.rerr != nil {
			return nil, l.rerr
		}
		collected[i] = l.part
	}
	merged, err := core.MergeScatter(collected)
	if err != nil {
		return nil, &RouteError{Domain: domain, Err: err}
	}
	return merged, nil
}

// encodeAPIResult renders a merged answer exactly as webui's handler
// does (json.Encoder appends the trailing newline json.Marshal omits),
// so a scattered domain's bytes match a monolith's.
func encodeAPIResult(res webui.APIResult) ([]byte, error) {
	body, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// askBroadcast is the unclassifiable-question fallback: the question
// is asked in every hosted domain concurrently and the best
// single-domain answer wins — most exact answers, then most answers,
// then canonical (sorted) domain order, so the merge is deterministic.
// classifyErr is surfaced when no shard answers at all.
func (r *Router) askBroadcast(ctx context.Context, question string, classifyErr error) (*Proxied, error) {
	type cand struct {
		domain  string
		proxied *Proxied
		exact   int
		answers int
	}
	results := make([]*cand, len(r.domains))
	var wg sync.WaitGroup
	for i, domain := range r.domains {
		wg.Add(1)
		go func(i int, domain string) {
			defer wg.Done()
			p, err := r.askOwned(ctx, domain, question)
			if err != nil || p.Status != http.StatusOK {
				return
			}
			var body struct {
				ExactCount int               `json:"exact_count"`
				Answers    []json.RawMessage `json:"answers"`
			}
			if json.Unmarshal(p.Body, &body) != nil {
				return
			}
			results[i] = &cand{domain: domain, proxied: p, exact: body.ExactCount, answers: len(body.Answers)}
		}(i, domain)
	}
	wg.Wait()
	var best *cand
	for _, c := range results { // sorted domain order breaks ties
		if c == nil {
			continue
		}
		if best == nil || c.exact > best.exact || (c.exact == best.exact && c.answers > best.answers) {
			best = c
		}
	}
	if best == nil {
		if classifyErr == nil {
			return nil, &RouteError{Err: fmt.Errorf("no shard answered the broadcast")}
		}
		return nil, &RouteError{Err: fmt.Errorf("unclassifiable and no shard answered the broadcast: %w", classifyErr)}
	}
	p := *best.proxied
	p.Domain = "" // a merged answer was not routed to one domain
	return &p, nil
}

// Item is one question's outcome in a scattered batch: the owning
// shard's raw per-question JSON object (exactly the entry a monolith's
// POST /api/ask/batch would carry), or the *RouteError that prevented
// one.
type Item struct {
	Index  int
	Domain string
	JSON   json.RawMessage
	Err    error
}

// AskBatch answers many questions through the cluster. Each question
// is classified once (unless domain pins them all), the questions are
// grouped by owning domain — one POST /api/ask/batch per domain (per
// partition for a hash-partitioned domain), scattered in parallel —
// and the per-question answers are gathered back into input order. A
// failed group fails only its own questions (typed *RouteError per
// item); unclassifiable questions fall back to broadcast-and-merge
// individually.
func (r *Router) AskBatch(ctx context.Context, domain string, questions []string) []Item {
	items := make([]Item, len(questions))
	groups := make(map[string][]int)
	type unrouted struct {
		idx int
		err error // the classification failure, surfaced if broadcast also fails
	}
	var broadcast []unrouted
	for i, q := range questions {
		items[i].Index = i
		d := domain
		if d == "" {
			routed, err := r.Route(q)
			if err != nil {
				if r.cls == nil {
					// Configuration fault, not an unclassifiable
					// question — no broadcast (see Ask).
					items[i].Err = &RouteError{Err: err}
					continue
				}
				broadcast = append(broadcast, unrouted{idx: i, err: err})
				continue
			}
			d = routed
		}
		items[i].Domain = d
		if _, ok := r.states[d]; !ok {
			items[i].Err = &RouteError{Domain: d, Err: ErrNoShard}
			continue
		}
		groups[d] = append(groups[d], i)
	}
	var wg sync.WaitGroup
	for d, idxs := range groups {
		wg.Add(1)
		go func(d string, idxs []int) {
			defer wg.Done()
			r.askGroup(ctx, d, questions, idxs, items)
		}(d, idxs)
	}
	for _, u := range broadcast {
		wg.Add(1)
		go func(i int, classifyErr error) {
			defer wg.Done()
			p, err := r.askBroadcast(ctx, questions[i], classifyErr)
			if err != nil {
				items[i].Err = err
				return
			}
			items[i].JSON = json.RawMessage(p.Body)
		}(u.idx, u.err)
	}
	wg.Wait()
	return items
}

// askGroup sends one domain's questions to its owner and scatters the
// per-question answers back into the item slots, which are disjoint
// across groups.
func (r *Router) askGroup(ctx context.Context, domain string, questions []string, idxs []int, items []Item) {
	fail := func(err error) {
		for _, i := range idxs {
			items[i].Err = err
		}
	}
	chunk := make([]string, len(idxs))
	for j, i := range idxs {
		chunk[j] = questions[i]
	}
	body, err := json.Marshal(map[string]any{"domain": domain, "questions": chunk})
	if err != nil {
		fail(&RouteError{Domain: domain, Err: err})
		return
	}
	parts, ok := r.partsOf(domain)
	if !ok {
		fail(&RouteError{Domain: domain, Err: ErrNoShard})
		return
	}
	if len(parts) == 1 && parts[0].slice.IsWhole() {
		base, status, respBody, err := r.doRead(ctx, http.MethodPost, parts[0], "/api/ask/batch", body, "application/json", nil)
		if err != nil {
			fail(&RouteError{Domain: domain, Shard: base, Err: err})
			return
		}
		if status != http.StatusOK {
			fail(&RouteError{Domain: domain, Shard: base, Status: status,
				Err: fmt.Errorf("batch refused: %s", bytes.TrimSpace(respBody))})
			return
		}
		var out struct {
			Results []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(respBody, &out); err != nil {
			fail(&RouteError{Domain: domain, Shard: base, Status: status, Err: fmt.Errorf("decoding batch response: %w", err)})
			return
		}
		if len(out.Results) != len(idxs) {
			fail(&RouteError{Domain: domain, Shard: base, Status: status,
				Err: fmt.Errorf("shard returned %d results for %d questions", len(out.Results), len(idxs))})
			return
		}
		for j, i := range idxs {
			items[i].JSON = out.Results[j]
		}
		return
	}
	r.askGroupScattered(ctx, domain, body, parts, idxs, items, fail)
}

// askGroupScattered answers one partitioned domain's batch chunk: the
// same chunk body goes to every partition with the scatter header, and
// each question's parts are merged into the entry a monolith's batch
// would carry. The chunk fails as a unit, like a shard batch does.
func (r *Router) askGroupScattered(ctx context.Context, domain string, body []byte, parts []*partState, idxs []int, items []Item, fail func(error)) {
	type leg struct {
		parts []*wirePart
		rerr  *RouteError
	}
	legs := make([]leg, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p *partState) {
			defer wg.Done()
			hdr := map[string]string{webui.ScatterHeader: p.slice.String()}
			base, status, respBody, err := r.doRead(ctx, http.MethodPost, p, "/api/ask/batch", body, "application/json", hdr)
			if err != nil {
				legs[i].rerr = &RouteError{Domain: domain, Shard: base, Err: err}
				return
			}
			if status != http.StatusOK {
				legs[i].rerr = &RouteError{Domain: domain, Shard: base, Status: status,
					Err: fmt.Errorf("scatter batch refused: %s", bytes.TrimSpace(respBody))}
				return
			}
			var out struct {
				Parts []*wirePart `json:"parts"`
			}
			if err := json.Unmarshal(respBody, &out); err != nil {
				legs[i].rerr = &RouteError{Domain: domain, Shard: base, Status: status,
					Err: fmt.Errorf("decoding scatter batch: %w", err)}
				return
			}
			if len(out.Parts) != len(idxs) {
				legs[i].rerr = &RouteError{Domain: domain, Shard: base, Status: status,
					Err: fmt.Errorf("partition returned %d parts for %d questions", len(out.Parts), len(idxs))}
				return
			}
			legs[i].parts = out.Parts
		}(i, p)
	}
	wg.Wait()
	for _, l := range legs {
		if l.rerr != nil {
			fail(l.rerr)
			return
		}
	}
	for j, i := range idxs {
		perQ := make([]*wirePart, len(legs))
		for k := range legs {
			perQ[k] = legs[k].parts[j]
		}
		merged, err := core.MergeScatter(perQ)
		if err != nil {
			fail(&RouteError{Domain: domain, Err: err})
			return
		}
		entry, err := json.Marshal(webui.APIResultFromScatter(merged))
		if err != nil {
			fail(&RouteError{Domain: domain, Err: err})
			return
		}
		items[i].JSON = entry
	}
}

// ForwardAd fans one POST /api/ads body out to the shard owning the
// ad's Domain field. For a hash-partitioned domain the insert is
// spread round-robin — each partition assigns the new ad an id it
// owns, so any partition can take any unpinned insert — and the write
// waits out any rebalance fence first.
func (r *Router) ForwardAd(ctx context.Context, domain string, body []byte) (*Proxied, error) {
	return r.forwardAd(ctx, domain, body, "")
}

// ForwardAdPinned forwards an insert that pins its ad key (the
// X-Cqads-Ad-Id ingest header): the write routes to the partition
// owning the key's hash and carries the pin through.
func (r *Router) ForwardAdPinned(ctx context.Context, domain string, body []byte, adID string) (*Proxied, error) {
	return r.forwardAd(ctx, domain, body, adID)
}

// forwardAd is the shared insert path: admit through the fence, pick
// the partition, forward, and on a 421 (the partition no longer hosts
// the key — a rebalance cut over between snapshot and send) re-read
// the map and retry once.
func (r *Router) forwardAd(ctx context.Context, domain string, body []byte, adID string) (*Proxied, error) {
	ds, ok := r.states[domain]
	if !ok {
		return nil, &RouteError{Domain: domain, Err: ErrNoShard}
	}
	var key uint64
	hasKey := false
	var hdr map[string]string
	if adID != "" {
		id, err := strconv.ParseUint(adID, 10, 63)
		if err != nil {
			return nil, &RouteError{Domain: domain, Err: fmt.Errorf("invalid pinned ad id %q: %w", adID, err)}
		}
		key, hasKey = id, true
		hdr = map[string]string{webui.AdIDHeader: adID}
	}
	tok, err := ds.admitWrite(ctx, key, hasKey)
	if err != nil {
		return nil, &RouteError{Domain: domain, Err: err}
	}
	defer ds.release(tok)
	return r.forwardWrite(ctx, ds, domain, key, hasKey, func(p *partState) (string, int, []byte, error) {
		return r.doRouted(ctx, http.MethodPost, p, "/api/ads", body, "application/json", hdr)
	})
}

// ForwardDelete forwards DELETE /api/ads/{id}?domain=... to the owner
// — for a partitioned domain, to the partition owning the id's hash —
// waiting out any rebalance fence like an insert does.
func (r *Router) ForwardDelete(ctx context.Context, domain, id string) (*Proxied, error) {
	ds, ok := r.states[domain]
	if !ok {
		return nil, &RouteError{Domain: domain, Err: ErrNoShard}
	}
	// A non-numeric id cannot be hash-routed; forward it anyway (keyless,
	// so it queues behind any fence) and let the owning shard's own
	// parsing produce the authoritative error bytes.
	key, err := strconv.ParseUint(id, 10, 63)
	hasKey := err == nil
	tok, aerr := ds.admitWrite(ctx, key, hasKey)
	if aerr != nil {
		return nil, &RouteError{Domain: domain, Err: aerr}
	}
	defer ds.release(tok)
	q := url.Values{"domain": {domain}}
	path := "/api/ads/" + url.PathEscape(id) + "?" + q.Encode()
	return r.forwardWrite(ctx, ds, domain, key, hasKey, func(p *partState) (string, int, []byte, error) {
		return r.doRouted(ctx, http.MethodDelete, p, path, nil, "", nil)
	})
}

// forwardWrite picks the target partition for one admitted write and
// sends it, retrying once on 421 with a re-read partition map.
func (r *Router) forwardWrite(ctx context.Context, ds *domainState, domain string, key uint64, hasKey bool, send func(*partState) (string, int, []byte, error)) (*Proxied, error) {
	for attempt := 0; ; attempt++ {
		parts := ds.snapshot()
		var p *partState
		if hasKey && !(len(parts) == 1 && parts[0].slice.IsWhole()) {
			p = partFor(parts, key)
		} else {
			ds.mu.Lock()
			ds.rr++
			p = parts[ds.rr%uint64(len(parts))]
			ds.mu.Unlock()
		}
		if p == nil {
			return nil, &RouteError{Domain: domain, Err: fmt.Errorf("no partition owns key %d", key)}
		}
		base, status, respBody, err := send(p)
		if err != nil {
			return nil, &RouteError{Domain: domain, Shard: base, Err: err}
		}
		if status == http.StatusMisdirectedRequest && attempt == 0 {
			continue
		}
		return &Proxied{Domain: domain, Status: status, Body: respBody}, nil
	}
}

// ShardView is one shard's slice of a scatter-gathered cluster probe.
type ShardView struct {
	// URL is the shard's base URL; Domains the domains it owns.
	URL     string   `json:"url"`
	Domains []string `json:"domains"`
	// Reachable reports whether the probe got an HTTP response at all.
	Reachable bool `json:"reachable"`
	// StatusCode is the shard's HTTP status (0 when unreachable).
	StatusCode int `json:"status_code,omitempty"`
	// State is the shard's /healthz state ("serving", "recovering",
	// "write-failed"); empty for /api/status probes and failures.
	State string `json:"state,omitempty"`
	// Body is the shard's raw JSON response (status probes only).
	Body json.RawMessage `json:"status,omitempty"`
	// Error describes the probe failure.
	Error string `json:"error,omitempty"`
}

// urlView computes the current unique member URLs (sorted) and each
// URL's hosted domains — computed per call because rebalancing adds
// and retires members at runtime.
func (r *Router) urlView() ([]string, map[string][]string) {
	byURL := make(map[string][]string)
	for _, domain := range r.domains {
		parts, _ := r.partsOf(domain)
		seen := make(map[string]bool)
		for _, p := range parts {
			for _, base := range p.members {
				if !seen[base] {
					seen[base] = true
					byURL[base] = append(byURL[base], domain)
				}
			}
		}
	}
	urls := make([]string, 0, len(byURL))
	for base, ds := range byURL {
		sort.Strings(ds)
		urls = append(urls, base)
	}
	sort.Strings(urls)
	return urls, byURL
}

// URLs lists the unique member URLs currently in the routing table,
// sorted.
func (r *Router) URLs() []string {
	urls, _ := r.urlView()
	return urls
}

// ClusterStatus scatter-gathers GET /api/status across every shard,
// one view per unique shard URL in sorted order.
func (r *Router) ClusterStatus(ctx context.Context) []ShardView {
	return r.probeAll(ctx, "/api/status", false)
}

// ClusterHealth scatter-gathers GET /healthz across every shard.
func (r *Router) ClusterHealth(ctx context.Context) []ShardView {
	return r.probeAll(ctx, "/healthz", true)
}

// probeAll hits one path on every unique shard URL concurrently,
// each probe bounded by the probe timeout so a wedged shard cannot
// stall the cluster view for the data path's much longer deadline.
func (r *Router) probeAll(ctx context.Context, path string, health bool) []ShardView {
	ctx, cancel := context.WithTimeout(ctx, r.probeTimeout)
	defer cancel()
	urls, byURL := r.urlView()
	views := make([]ShardView, len(urls))
	var wg sync.WaitGroup
	for i, base := range urls {
		views[i] = ShardView{URL: base, Domains: byURL[base]}
		wg.Add(1)
		go func(v *ShardView, base string) {
			defer wg.Done()
			status, body, err := r.do(ctx, http.MethodGet, base, path, nil, "", nil)
			if err != nil {
				v.Error = err.Error()
				return
			}
			v.Reachable = true
			v.StatusCode = status
			if health {
				var h struct {
					State string `json:"state"`
				}
				if json.Unmarshal(body, &h) == nil {
					v.State = h.State
				}
				return
			}
			if json.Valid(body) {
				v.Body = json.RawMessage(body)
			} else {
				v.Error = "shard returned invalid JSON"
			}
		}(&views[i], base)
	}
	wg.Wait()
	return views
}

// do issues one upstream request and slurps the response.
func (r *Router) do(ctx context.Context, method, base, pathAndQuery string, body []byte, contentType string, hdr map[string]string) (int, []byte, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+pathAndQuery, reader)
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("reading response: %w", err)
	}
	return resp.StatusCode, respBody, nil
}
