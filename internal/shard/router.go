package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/failover"
)

// DefaultTimeout bounds one upstream shard call when Config.Client is
// nil.
const DefaultTimeout = 15 * time.Second

// DefaultProbeTimeout bounds one /healthz or /api/status probe. Kept
// far below the data-path timeout: a single wedged shard must not
// stall the whole cluster health view past a load balancer's own
// probe deadline.
const DefaultProbeTimeout = 2 * time.Second

// Config wires a Router.
type Config struct {
	// Shards maps each hosted domain to the base URL of the single
	// shard serving it. For replica-set groups use Groups instead;
	// setting both is an error for the overlapping domains.
	Shards map[string]string
	// Groups maps each hosted domain to its owning shard's replica-set
	// member URLs (ParseMap produces this). A one-member group is
	// routed to statically; a multi-member group makes the router
	// resolve and follow the set's elected leader through
	// GET /api/repl/leader — lazily, with invalidate-and-retry on
	// failure, so elections propagate exactly when traffic notices
	// them.
	Groups map[string][]string
	// Classifier routes questions without an explicit domain; nil
	// makes such requests fail with a RouteError instead of routing.
	Classifier Classifier
	// Client issues every upstream request; nil uses a client with
	// Timeout (or DefaultTimeout).
	Client *http.Client
	// Timeout configures the default client; ignored when Client is
	// set. 0 means DefaultTimeout.
	Timeout time.Duration
	// ProbeTimeout bounds each ClusterStatus/ClusterHealth probe; 0
	// means DefaultProbeTimeout.
	ProbeTimeout time.Duration
}

// Router owns the routing table of a shard cluster: classify once,
// forward to the owner, scatter-gather batches and cluster probes. It
// is safe for concurrent use and spawns no background goroutines —
// every scatter joins before its method returns.
type Router struct {
	groups       map[string][]string        // domain → owning group's member URLs
	watch        map[string]*failover.Watch // domain → its group's leader watcher (multi-member groups only)
	lat          map[string]*groupLatency   // domain → its group's read-latency profile (shared per member set)
	latGroups    []*groupLatency            // unique profiles, sorted by group key
	domains      []string                   // hosted domains, sorted
	urls         []string                   // unique member URLs, sorted
	byURL        map[string][]string        // member URL → its domains, sorted
	cls          Classifier
	client       *http.Client
	probeTimeout time.Duration
}

// New builds a Router over a parsed shard map.
func New(cfg Config) (*Router, error) {
	groups := make(map[string][]string, len(cfg.Groups)+len(cfg.Shards))
	for domain, members := range cfg.Groups {
		if len(members) == 0 {
			return nil, fmt.Errorf("shard: domain %q has an empty replica set", domain)
		}
		groups[domain] = members
	}
	for domain, base := range cfg.Shards {
		if _, dup := groups[domain]; dup {
			return nil, fmt.Errorf("shard: domain %q is in both Shards and Groups", domain)
		}
		groups[domain] = []string{base}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("shard: Config.Shards and Config.Groups are both empty")
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = DefaultTimeout
		}
		client = &http.Client{Timeout: timeout}
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = DefaultProbeTimeout
	}
	r := &Router{
		groups:       groups,
		watch:        make(map[string]*failover.Watch),
		lat:          make(map[string]*groupLatency),
		byURL:        make(map[string][]string),
		cls:          cfg.Classifier,
		client:       client,
		probeTimeout: probeTimeout,
	}
	// Domains owned by the same replica set share one leader watcher,
	// so an election is re-resolved once for the shard, not once per
	// domain it hosts. The read-latency profile is shared the same way
	// — every group gets one, single-member groups included, so the
	// front tier's latency block covers the whole cluster.
	shared := make(map[string]*failover.Watch)
	sharedLat := make(map[string]*groupLatency)
	for domain, members := range groups {
		r.domains = append(r.domains, domain)
		for _, base := range members {
			r.byURL[base] = append(r.byURL[base], domain)
		}
		key := strings.Join(members, "|")
		g, ok := sharedLat[key]
		if !ok {
			g = &groupLatency{key: key}
			sharedLat[key] = g
			r.latGroups = append(r.latGroups, g)
		}
		r.lat[domain] = g
		if len(members) > 1 {
			w, ok := shared[key]
			if !ok {
				w = failover.NewWatch(members, client)
				shared[key] = w
			}
			r.watch[domain] = w
		}
	}
	sort.Strings(r.domains)
	sort.Slice(r.latGroups, func(i, j int) bool { return r.latGroups[i].key < r.latGroups[j].key })
	for base, ds := range r.byURL {
		sort.Strings(ds)
		r.urls = append(r.urls, base)
	}
	sort.Strings(r.urls)
	return r, nil
}

// Close releases pooled upstream connections.
func (r *Router) Close() { r.client.CloseIdleConnections() }

// Domains lists the hosted domains, sorted.
func (r *Router) Domains() []string {
	out := make([]string, len(r.domains))
	copy(out, r.domains)
	return out
}

// Owner reports the group hosting a domain: the shard's base URL, or
// the "|"-joined member list for a replica-set group (the same form
// ParseMap accepts).
func (r *Router) Owner(domain string) (string, bool) {
	members, ok := r.groups[domain]
	if !ok {
		return "", false
	}
	return strings.Join(members, "|"), true
}

// leaderOf resolves the base URL traffic for a domain should hit right
// now: the sole member of a static group, or the replica set's current
// leader (cached by the group's watcher until invalidated).
func (r *Router) leaderOf(ctx context.Context, domain string) (string, error) {
	members, ok := r.groups[domain]
	if !ok {
		return "", ErrNoShard
	}
	if len(members) == 1 {
		return members[0], nil
	}
	return r.watch[domain].Resolve(ctx)
}

// doRouted issues one request to a domain's owning shard, following
// leadership: resolve the leader, send, and on a failure that smells
// like a stale leader — the node is unreachable, or refuses the write
// read-only (403) — invalidate the cached leader, re-resolve, and
// retry once. Static single-member groups never probe and never retry,
// preserving the pre-replica-set behavior exactly. The base actually
// answering is returned for error attribution.
func (r *Router) doRouted(ctx context.Context, method, domain, pathAndQuery string, body []byte, contentType string) (base string, status int, respBody []byte, err error) {
	base, err = r.leaderOf(ctx, domain)
	if err != nil {
		return "", 0, nil, err
	}
	status, respBody, err = r.do(ctx, method, base, pathAndQuery, body, contentType)
	w := r.watch[domain]
	if w == nil || (err == nil && status != http.StatusForbidden) {
		return base, status, respBody, err
	}
	w.Invalidate(base)
	next, rerr := w.Resolve(ctx)
	if rerr != nil || next == base {
		return base, status, respBody, err
	}
	base = next
	status, respBody, err = r.do(ctx, method, base, pathAndQuery, body, contentType)
	return base, status, respBody, err
}

// Route classifies a question into its owning domain.
func (r *Router) Route(question string) (string, error) {
	if r.cls == nil {
		return "", fmt.Errorf("shard: no classifier configured; pass an explicit domain")
	}
	return r.cls.ClassifyQuestion(question)
}

// Proxied is one upstream answer, verbatim: the owning shard's HTTP
// status and JSON body, byte-identical to what the shard (and
// therefore a monolith) would have served directly.
type Proxied struct {
	// Domain the request was routed to ("" for a broadcast merge).
	Domain string
	// Status is the shard's HTTP status code.
	Status int
	// Body is the shard's response body.
	Body []byte
}

// Ask answers one question through the cluster: classify (when domain
// is empty), forward GET /api/ask to the owning shard, and return its
// verbatim response. A question the classifier cannot place falls
// back to broadcast-and-merge across every hosted domain. Errors are
// always *RouteError.
func (r *Router) Ask(ctx context.Context, domain, question string) (*Proxied, error) {
	if domain == "" {
		if r.cls == nil {
			// A missing classifier is a configuration fault, not an
			// unclassifiable question: fail as documented instead of
			// silently broadcasting every query N-wide.
			_, err := r.Route(question)
			return nil, &RouteError{Err: err}
		}
		d, err := r.Route(question)
		if err != nil {
			return r.askBroadcast(ctx, question, err)
		}
		domain = d
	}
	return r.askOwned(ctx, domain, question)
}

// askOwned forwards one question to the shard owning domain, hedging
// a slow or failing member against another member of its group.
func (r *Router) askOwned(ctx context.Context, domain, question string) (*Proxied, error) {
	if _, ok := r.groups[domain]; !ok {
		return nil, &RouteError{Domain: domain, Err: ErrNoShard}
	}
	q := url.Values{"domain": {domain}, "q": {question}}
	base, status, body, err := r.doRead(ctx, http.MethodGet, domain, "/api/ask?"+q.Encode(), nil, "")
	if err != nil {
		return nil, &RouteError{Domain: domain, Shard: base, Err: err}
	}
	return &Proxied{Domain: domain, Status: status, Body: body}, nil
}

// askBroadcast is the unclassifiable-question fallback: the question
// is asked in every hosted domain concurrently and the best
// single-domain answer wins — most exact answers, then most answers,
// then canonical (sorted) domain order, so the merge is deterministic.
// classifyErr is surfaced when no shard answers at all.
func (r *Router) askBroadcast(ctx context.Context, question string, classifyErr error) (*Proxied, error) {
	type cand struct {
		domain  string
		proxied *Proxied
		exact   int
		answers int
	}
	results := make([]*cand, len(r.domains))
	var wg sync.WaitGroup
	for i, domain := range r.domains {
		wg.Add(1)
		go func(i int, domain string) {
			defer wg.Done()
			p, err := r.askOwned(ctx, domain, question)
			if err != nil || p.Status != http.StatusOK {
				return
			}
			var body struct {
				ExactCount int               `json:"exact_count"`
				Answers    []json.RawMessage `json:"answers"`
			}
			if json.Unmarshal(p.Body, &body) != nil {
				return
			}
			results[i] = &cand{domain: domain, proxied: p, exact: body.ExactCount, answers: len(body.Answers)}
		}(i, domain)
	}
	wg.Wait()
	var best *cand
	for _, c := range results { // sorted domain order breaks ties
		if c == nil {
			continue
		}
		if best == nil || c.exact > best.exact || (c.exact == best.exact && c.answers > best.answers) {
			best = c
		}
	}
	if best == nil {
		if classifyErr == nil {
			return nil, &RouteError{Err: fmt.Errorf("no shard answered the broadcast")}
		}
		return nil, &RouteError{Err: fmt.Errorf("unclassifiable and no shard answered the broadcast: %w", classifyErr)}
	}
	p := *best.proxied
	p.Domain = "" // a merged answer was not routed to one domain
	return &p, nil
}

// Item is one question's outcome in a scattered batch: the owning
// shard's raw per-question JSON object (exactly the entry a monolith's
// POST /api/ask/batch would carry), or the *RouteError that prevented
// one.
type Item struct {
	Index  int
	Domain string
	JSON   json.RawMessage
	Err    error
}

// AskBatch answers many questions through the cluster. Each question
// is classified once (unless domain pins them all), the questions are
// grouped by owning shard — one POST /api/ask/batch per hosted domain,
// scattered in parallel — and the per-question answers are gathered
// back into input order. A failed group fails only its own questions
// (typed *RouteError per item); unclassifiable questions fall back to
// broadcast-and-merge individually.
func (r *Router) AskBatch(ctx context.Context, domain string, questions []string) []Item {
	items := make([]Item, len(questions))
	groups := make(map[string][]int)
	type unrouted struct {
		idx int
		err error // the classification failure, surfaced if broadcast also fails
	}
	var broadcast []unrouted
	for i, q := range questions {
		items[i].Index = i
		d := domain
		if d == "" {
			routed, err := r.Route(q)
			if err != nil {
				if r.cls == nil {
					// Configuration fault, not an unclassifiable
					// question — no broadcast (see Ask).
					items[i].Err = &RouteError{Err: err}
					continue
				}
				broadcast = append(broadcast, unrouted{idx: i, err: err})
				continue
			}
			d = routed
		}
		items[i].Domain = d
		if _, ok := r.groups[d]; !ok {
			items[i].Err = &RouteError{Domain: d, Err: ErrNoShard}
			continue
		}
		groups[d] = append(groups[d], i)
	}
	var wg sync.WaitGroup
	for d, idxs := range groups {
		wg.Add(1)
		go func(d string, idxs []int) {
			defer wg.Done()
			r.askGroup(ctx, d, questions, idxs, items)
		}(d, idxs)
	}
	for _, u := range broadcast {
		wg.Add(1)
		go func(i int, classifyErr error) {
			defer wg.Done()
			p, err := r.askBroadcast(ctx, questions[i], classifyErr)
			if err != nil {
				items[i].Err = err
				return
			}
			items[i].JSON = json.RawMessage(p.Body)
		}(u.idx, u.err)
	}
	wg.Wait()
	return items
}

// askGroup sends one domain's questions to its owning shard and
// scatters the per-question answers back into the item slots, which
// are disjoint across groups.
func (r *Router) askGroup(ctx context.Context, domain string, questions []string, idxs []int, items []Item) {
	fail := func(err error) {
		for _, i := range idxs {
			items[i].Err = err
		}
	}
	chunk := make([]string, len(idxs))
	for j, i := range idxs {
		chunk[j] = questions[i]
	}
	body, err := json.Marshal(map[string]any{"domain": domain, "questions": chunk})
	if err != nil {
		fail(&RouteError{Domain: domain, Err: err})
		return
	}
	base, status, respBody, err := r.doRead(ctx, http.MethodPost, domain, "/api/ask/batch", body, "application/json")
	if err != nil {
		fail(&RouteError{Domain: domain, Shard: base, Err: err})
		return
	}
	if status != http.StatusOK {
		fail(&RouteError{Domain: domain, Shard: base, Status: status,
			Err: fmt.Errorf("batch refused: %s", bytes.TrimSpace(respBody))})
		return
	}
	var out struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(respBody, &out); err != nil {
		fail(&RouteError{Domain: domain, Shard: base, Status: status, Err: fmt.Errorf("decoding batch response: %w", err)})
		return
	}
	if len(out.Results) != len(idxs) {
		fail(&RouteError{Domain: domain, Shard: base, Status: status,
			Err: fmt.Errorf("shard returned %d results for %d questions", len(out.Results), len(idxs))})
		return
	}
	for j, i := range idxs {
		items[i].JSON = out.Results[j]
	}
}

// ForwardAd fans one POST /api/ads body out to the shard owning the
// ad's Domain field, returning the shard's verbatim response.
func (r *Router) ForwardAd(ctx context.Context, domain string, body []byte) (*Proxied, error) {
	if _, ok := r.groups[domain]; !ok {
		return nil, &RouteError{Domain: domain, Err: ErrNoShard}
	}
	base, status, respBody, err := r.doRouted(ctx, http.MethodPost, domain, "/api/ads", body, "application/json")
	if err != nil {
		return nil, &RouteError{Domain: domain, Shard: base, Err: err}
	}
	return &Proxied{Domain: domain, Status: status, Body: respBody}, nil
}

// ForwardDelete forwards DELETE /api/ads/{id}?domain=... to the owning
// shard.
func (r *Router) ForwardDelete(ctx context.Context, domain, id string) (*Proxied, error) {
	if _, ok := r.groups[domain]; !ok {
		return nil, &RouteError{Domain: domain, Err: ErrNoShard}
	}
	q := url.Values{"domain": {domain}}
	base, status, respBody, err := r.doRouted(ctx, http.MethodDelete, domain, "/api/ads/"+url.PathEscape(id)+"?"+q.Encode(), nil, "")
	if err != nil {
		return nil, &RouteError{Domain: domain, Shard: base, Err: err}
	}
	return &Proxied{Domain: domain, Status: status, Body: respBody}, nil
}

// ShardView is one shard's slice of a scatter-gathered cluster probe.
type ShardView struct {
	// URL is the shard's base URL; Domains the domains it owns.
	URL     string   `json:"url"`
	Domains []string `json:"domains"`
	// Reachable reports whether the probe got an HTTP response at all.
	Reachable bool `json:"reachable"`
	// StatusCode is the shard's HTTP status (0 when unreachable).
	StatusCode int `json:"status_code,omitempty"`
	// State is the shard's /healthz state ("serving", "recovering",
	// "write-failed"); empty for /api/status probes and failures.
	State string `json:"state,omitempty"`
	// Body is the shard's raw JSON response (status probes only).
	Body json.RawMessage `json:"status,omitempty"`
	// Error describes the probe failure.
	Error string `json:"error,omitempty"`
}

// ClusterStatus scatter-gathers GET /api/status across every shard,
// one view per unique shard URL in sorted order.
func (r *Router) ClusterStatus(ctx context.Context) []ShardView {
	return r.probeAll(ctx, "/api/status", false)
}

// ClusterHealth scatter-gathers GET /healthz across every shard.
func (r *Router) ClusterHealth(ctx context.Context) []ShardView {
	return r.probeAll(ctx, "/healthz", true)
}

// probeAll hits one path on every unique shard URL concurrently,
// each probe bounded by the probe timeout so a wedged shard cannot
// stall the cluster view for the data path's much longer deadline.
func (r *Router) probeAll(ctx context.Context, path string, health bool) []ShardView {
	ctx, cancel := context.WithTimeout(ctx, r.probeTimeout)
	defer cancel()
	views := make([]ShardView, len(r.urls))
	var wg sync.WaitGroup
	for i, base := range r.urls {
		views[i] = ShardView{URL: base, Domains: r.byURL[base]}
		wg.Add(1)
		go func(v *ShardView, base string) {
			defer wg.Done()
			status, body, err := r.do(ctx, http.MethodGet, base, path, nil, "")
			if err != nil {
				v.Error = err.Error()
				return
			}
			v.Reachable = true
			v.StatusCode = status
			if health {
				var h struct {
					State string `json:"state"`
				}
				if json.Unmarshal(body, &h) == nil {
					v.State = h.State
				}
				return
			}
			if json.Valid(body) {
				v.Body = json.RawMessage(body)
			} else {
				v.Error = "shard returned invalid JSON"
			}
		}(&views[i], base)
	}
	wg.Wait()
	return views
}

// do issues one upstream request and slurps the response.
func (r *Router) do(ctx context.Context, method, base, pathAndQuery string, body []byte, contentType string) (int, []byte, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+pathAndQuery, reader)
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("reading response: %w", err)
	}
	return resp.StatusCode, respBody, nil
}
