package shard_test

// Replica-set groups in the shard map and the router's
// leader-following behavior: parse the "|" group syntax, resolve a
// group's leader lazily through /api/repl/leader, cache it, and on a
// stale-leader failure (403 read-only, or the node gone) invalidate
// and follow the new leader — while single-member groups keep the old
// static routing and never probe.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failover"
	"repro/internal/partition"
	"repro/internal/shard"
)

func TestParseMapGroups(t *testing.T) {
	h := func(index, count uint32) partition.Slice { return partition.Slice{Index: index, Count: count} }
	good := []struct {
		in   string
		want shard.Map
	}{
		{"cars=http://a:1|http://b:1|http://c:1",
			shard.Map{"cars": {{Members: []string{"http://a:1", "http://b:1", "http://c:1"}}}}},
		{"cars=http://a:1/|http://b:1, csjobs=http://b:1",
			shard.Map{"cars": {{Members: []string{"http://a:1", "http://b:1"}}},
				"csjobs": {{Members: []string{"http://b:1"}}}}},
		{"cars=http://a:1|http://b:1,motorcycles=http://a:1|http://b:1",
			shard.Map{"cars": {{Members: []string{"http://a:1", "http://b:1"}}},
				"motorcycles": {{Members: []string{"http://a:1", "http://b:1"}}}}},
		{"cars=h0:http://a:1,h1:http://b:1",
			shard.Map{"cars": {
				{Slice: h(0, 2), Members: []string{"http://a:1"}},
				{Slice: h(1, 2), Members: []string{"http://b:1"}}}}},
		// Slots may arrive in any order; groups come back sorted by index.
		{"cars=h1:http://b:1,h0:http://a:1",
			shard.Map{"cars": {
				{Slice: h(0, 2), Members: []string{"http://a:1"}},
				{Slice: h(1, 2), Members: []string{"http://b:1"}}}}},
		// Hash groups compose with replica sets, and a hash-partitioned
		// domain coexists with plain ones.
		{"cars=h0:http://a:1|http://b:1,h1:http://c:1|http://d:1,csjobs=http://e:1",
			shard.Map{"cars": {
				{Slice: h(0, 2), Members: []string{"http://a:1", "http://b:1"}},
				{Slice: h(1, 2), Members: []string{"http://c:1", "http://d:1"}}},
				"csjobs": {{Members: []string{"http://e:1"}}}}},
		// A lone h0 slot is a 1-way partition: the whole hash space.
		{"cars=h0:http://a:1",
			shard.Map{"cars": {{Slice: h(0, 1), Members: []string{"http://a:1"}}}}},
		{"cars=h0:http://a:1,h1:http://b:1,h2:http://c:1,h3:http://d:1",
			shard.Map{"cars": {
				{Slice: h(0, 4), Members: []string{"http://a:1"}},
				{Slice: h(1, 4), Members: []string{"http://b:1"}},
				{Slice: h(2, 4), Members: []string{"http://c:1"}},
				{Slice: h(3, 4), Members: []string{"http://d:1"}}}}},
	}
	for _, tc := range good {
		m, err := shard.ParseMap(tc.in)
		if err != nil {
			t.Errorf("ParseMap(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(m, tc.want) {
			t.Errorf("ParseMap(%q) = %v, want %v", tc.in, m, tc.want)
		}
	}
	bad := []string{
		"cars=http://a:1|",                                 // empty member
		"cars=|http://a:1",                                 // empty member, leading
		"cars=http://a:1|http://a:1",                       // duplicate member in a group
		"cars=http://a:1|ftp://b:1",                        // non-http member
		"cars=h0:http://a:1,h2:http://b:1",                 // gap: {0,2} is not a permutation
		"cars=h0:http://a:1,h0:http://b:1",                 // duplicate slot
		"cars=h0:http://a:1,h1:http://b:1,h2:http://c:1",   // three slots: not a power of two
		"cars=hx:http://a:1,h1:http://b:1",                 // malformed slot
		"h0:http://a:1",                                    // continuation with no domain
		"csjobs=http://e:1,h1:http://b:1",                  // continuation after a plain domain
		"cars=h0:http://a:1,h1:http://b:1,cars=http://c:1", // domain re-mapped
	}
	for _, in := range bad {
		if _, err := shard.ParseMap(in); err == nil {
			t.Errorf("ParseMap(%q) accepted", in)
		}
	}
}

// member is a fake replica-set node: it reports a mutable leader view
// on /api/repl/leader, answers asks with its own name in the
// interpretation field (so tests can tell who served), and accepts
// writes only while leading (403 read-only otherwise).
type member struct {
	name string
	srv  *httptest.Server

	mu       sync.Mutex
	view     failover.LeaderView
	askDelay time.Duration // artificial /api/ask latency (hedge tests)
	probes   atomic.Int64
}

func newMember(t *testing.T, name string) *member {
	t.Helper()
	m := &member{name: name}
	m.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/api/repl/leader":
			m.probes.Add(1)
			m.mu.Lock()
			view := m.view
			m.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(view)
		case "/api/ask":
			m.mu.Lock()
			delay := m.askDelay
			m.mu.Unlock()
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-r.Context().Done():
					return // a cancelled hedge loser stops serving
				}
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(cannedResult(r.URL.Query().Get("domain"), m.name))
		case "/api/ads":
			m.mu.Lock()
			leads := m.view.Role == failover.RoleLeader
			m.mu.Unlock()
			if !leads {
				http.Error(w, `{"error":"read-only replica"}`, http.StatusForbidden)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusCreated)
			_ = json.NewEncoder(w).Encode(map[string]any{"domain": "cars", "id": 1, "served_by": m.name})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(m.srv.Close)
	return m
}

// lead flips this member to leader at epoch e; follow makes it a
// read-only follower vouching for leaderURL.
func (m *member) lead(e uint64) {
	m.mu.Lock()
	m.view = failover.LeaderView{LeaderURL: m.srv.URL, Epoch: e, Role: failover.RoleLeader}
	m.mu.Unlock()
}

func (m *member) follow(leaderURL string, e uint64) {
	m.mu.Lock()
	m.view = failover.LeaderView{LeaderURL: leaderURL, Epoch: e, Role: failover.RoleFollower}
	m.mu.Unlock()
}

// slow makes every subsequent /api/ask on this member take at least d.
func (m *member) slow(d time.Duration) {
	m.mu.Lock()
	m.askDelay = d
	m.mu.Unlock()
}

// servedBy extracts the member name a fake ask answer was served by.
func servedBy(t *testing.T, body []byte) string {
	t.Helper()
	var resp struct {
		Interpretation string `json:"interpretation"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding ask body %q: %v", body, err)
	}
	return resp.Interpretation
}

func TestRouterFollowsGroupLeader(t *testing.T) {
	checkGoroutines(t)
	a := newMember(t, "node-a")
	b := newMember(t, "node-b")
	a.lead(1)
	b.follow(a.srv.URL, 1)

	rt, err := shard.New(shard.Config{
		Groups:     map[string][]string{"cars": {a.srv.URL, b.srv.URL}},
		Client:     &http.Client{Timeout: 2 * time.Second},
		Classifier: tableClassifier{"q": "cars"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ctx := context.Background()

	if owner, ok := rt.Owner("cars"); !ok || owner != a.srv.URL+"|"+b.srv.URL {
		t.Fatalf("Owner = %q, %v", owner, ok)
	}

	// First ask resolves the leader; the second rides the cache.
	for i := 0; i < 2; i++ {
		p, err := rt.Ask(ctx, "cars", "q")
		if err != nil {
			t.Fatal(err)
		}
		if got := servedBy(t, p.Body); got != "node-a" {
			t.Fatalf("ask %d served by %q, want node-a", i, got)
		}
	}
	if probes := a.probes.Load() + b.probes.Load(); probes > 2 {
		t.Fatalf("leader cached after first resolve, yet %d probes", probes)
	}

	// Election: a is deposed but alive. The stale cached leader refuses
	// the write read-only; the router invalidates, re-resolves, and the
	// retry lands on the new leader.
	b.lead(2)
	a.follow(b.srv.URL, 2)
	p, err := rt.ForwardAd(ctx, "cars", []byte(`{"domain":"cars","record":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != http.StatusCreated {
		t.Fatalf("write after election = %d: %s", p.Status, p.Body)
	}
	var ad struct {
		ServedBy string `json:"served_by"`
	}
	if err := json.Unmarshal(p.Body, &ad); err != nil || ad.ServedBy != "node-b" {
		t.Fatalf("write served by %q (%v), want node-b", ad.ServedBy, err)
	}

	// The retarget sticks: reads now hit the new cached leader too.
	if p, err := rt.Ask(ctx, "cars", "q"); err != nil || servedBy(t, p.Body) != "node-b" {
		t.Fatalf("ask after election served by wrong node: %v", err)
	}

	// Crash failover: the cached leader dies outright, the survivor
	// retakes the lead, and one ask rides the invalidate-and-retry.
	b.srv.Close()
	a.lead(3)
	p, err = rt.Ask(ctx, "cars", "q")
	if err != nil {
		t.Fatal(err)
	}
	if got := servedBy(t, p.Body); got != "node-a" {
		t.Fatalf("ask after crash served by %q, want node-a", got)
	}
}

func TestRouterStaticGroupNeverProbes(t *testing.T) {
	checkGoroutines(t)
	// A single-member group behaves exactly like the pre-replica-set
	// static map: no leader probes, no retry.
	a := newMember(t, "solo")
	rt, err := shard.New(shard.Config{
		Groups: map[string][]string{"cars": {a.srv.URL}},
		Client: &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	if _, err := rt.Ask(context.Background(), "cars", "q"); err != nil {
		t.Fatal(err)
	}
	if n := a.probes.Load(); n != 0 {
		t.Fatalf("static group probed the leader endpoint %d times", n)
	}
	// A write refusal surfaces as-is instead of retrying elsewhere —
	// there is nowhere else.
	a.follow("", 1)
	p, err := rt.ForwardAd(context.Background(), "cars", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != http.StatusForbidden {
		t.Fatalf("static refused write = %d, want 403 passthrough", p.Status)
	}
}

func TestRouterGroupNoLeaderReachable(t *testing.T) {
	checkGoroutines(t)
	a := newMember(t, "a")
	b := newMember(t, "b")
	// Both members are candidates mid-election: nobody leads, no hints.
	a.mu.Lock()
	a.view = failover.LeaderView{Epoch: 2, Role: failover.RoleCandidate}
	a.mu.Unlock()
	b.mu.Lock()
	b.view = failover.LeaderView{Epoch: 2, Role: failover.RoleCandidate}
	b.mu.Unlock()

	rt, err := shard.New(shard.Config{
		Groups: map[string][]string{"cars": {a.srv.URL, b.srv.URL}},
		Client: &http.Client{Timeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	_, err = rt.Ask(context.Background(), "cars", "q")
	var rerr *shard.RouteError
	if !errors.As(err, &rerr) || rerr.Domain != "cars" {
		t.Fatalf("mid-election ask error = %v, want *RouteError for cars", err)
	}
}
