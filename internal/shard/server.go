package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/metrics/telemetry"
	"repro/internal/webui"
)

// Server is the front tier's HTTP surface: the same /api contract a
// single cqadsweb node serves, answered by routing to the shard
// cluster behind a Router. It holds no corpus — every answer byte
// comes from a shard — so the front tier scales horizontally and
// restarts statelessly.
//
//	GET  /                 cluster topology (domains → shard URLs)
//	GET  /api/ask?q=...    classify once, forward to the owning shard
//	POST /api/ask/batch    group per shard, scatter, gather in order
//	POST /api/ads          fan out by the ad's Domain field
//	DELETE /api/ads/{id}   forward (?domain=... required)
//	POST /api/rebalance    start a live partition split/move (202)
//	GET  /api/status       scatter-gathered per-shard status view
//	GET  /healthz          cluster health rollup with per-shard states
//
// Degraded mode: when a shard is unreachable its domains answer an
// empty-answers envelope carrying the error, with HTTP 502 on the
// single-question endpoint; other domains are unaffected.
type Server struct {
	rt  *Router
	reb Rebalancer
	mux *http.ServeMux
}

// RebalanceRequest asks the front tier to move one hash slice of a
// partitioned domain to a new owner: Source names the slice currently
// in the routing table that the move splits, TargetSlice the child
// slice the node at TargetURL takes over (the source keeps the other
// child).
type RebalanceRequest struct {
	Domain      string `json:"domain"`
	Source      string `json:"source"`
	TargetURL   string `json:"target_url"`
	TargetSlice string `json:"target_slice"`
}

// Rebalancer drives live partition moves. The concrete implementation
// lives in the rebalance package (which imports this one — the
// interface is defined here to keep the dependency one-way); Server
// only needs start-and-report.
type Rebalancer interface {
	// Start begins a move; it returns once the move is admitted (the
	// transfer itself runs in the background) and errors if a move is
	// already running or the request is invalid.
	Start(req RebalanceRequest) error
	// Status reports the current (or last finished) move's progress as
	// a JSON object, and whether a move is running right now.
	Status() (progress json.RawMessage, active bool)
}

// ServerOptions carries the front tier's optional collaborators.
type ServerOptions struct {
	// Rebalancer enables POST /api/rebalance; nil answers 501.
	Rebalancer Rebalancer
}

// NewServer wraps a Router in the front-tier handler.
func NewServer(rt *Router) *Server { return NewServerWith(rt, ServerOptions{}) }

// NewServerWith wraps a Router with optional collaborators wired in.
func NewServerWith(rt *Router, opts ServerOptions) *Server {
	s := &Server{rt: rt, reb: opts.Rebalancer, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux.HandleFunc("GET /api/ask", s.handleAsk)
	s.mux.HandleFunc("POST /api/ask/batch", s.handleAskBatch)
	s.mux.HandleFunc("POST /api/ads", s.handleInsertAd)
	s.mux.HandleFunc("DELETE /api/ads/{id}", s.handleDeleteAd)
	s.mux.HandleFunc("POST /api/rebalance", s.handleRebalance)
	s.mux.HandleFunc("GET /api/status", s.handleStatus)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// jsonError mirrors webui's error envelope.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// degradedEnvelope is the empty answer a dead shard's domain serves:
// the shape clients already parse, with the failure attached.
type degradedEnvelope struct {
	Domain  string     `json:"domain"`
	Answers []struct{} `json:"answers"`
	Error   string     `json:"error"`
}

func degraded(err error) degradedEnvelope {
	env := degradedEnvelope{Answers: []struct{}{}, Error: err.Error()}
	var re *RouteError
	if errors.As(err, &re) {
		env.Domain = re.Domain
	}
	return env
}

// routeErrorStatus maps a routing failure to the front tier's HTTP
// status: a domain nobody hosts is the request's problem (404), an
// unanswering shard is the cluster's (502).
func routeErrorStatus(err error) int {
	if errors.Is(err, ErrNoShard) {
		return http.StatusNotFound
	}
	return http.StatusBadGateway
}

// proxy copies an upstream shard response verbatim.
func proxy(w http.ResponseWriter, p *Proxied) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(p.Status)
	_, _ = w.Write(p.Body)
}

// handleIndex reports the cluster topology.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	owners := make(map[string]string, len(s.rt.domains))
	for _, d := range s.rt.domains {
		owners[d], _ = s.rt.Owner(d)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"service": "cqads front tier",
		"domains": owners,
		"shards":  s.rt.URLs(),
	})
}

// handleAsk answers one question: classified once here, answered by
// the owning shard, proxied byte-identically.
func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		jsonError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	p, err := s.rt.Ask(r.Context(), r.URL.Query().Get("domain"), q)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(routeErrorStatus(err))
		_ = json.NewEncoder(w).Encode(degraded(err))
		return
	}
	proxy(w, p)
}

// handleAskBatch scatters a batch across the cluster and gathers the
// answers in input order. Entries from healthy shards are the exact
// bytes a monolith would return; entries whose shard failed carry the
// degraded envelope — other entries are unaffected, so the batch as a
// whole still answers 200.
func (s *Server) handleAskBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Domain    string   `json:"domain"`
		Questions []string `json:"questions"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if len(req.Questions) == 0 {
		jsonError(w, http.StatusBadRequest, "no questions")
		return
	}
	items := s.rt.AskBatch(r.Context(), req.Domain, req.Questions)
	results := make([]any, len(items))
	for i, item := range items {
		if item.Err != nil {
			results[i] = degraded(item.Err)
			continue
		}
		results[i] = item.JSON
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"results": results})
}

// handleInsertAd fans one ad out to the shard owning its Domain field,
// forwarding the body untouched so the shard's schema conversion (and
// error reporting) is authoritative.
func (s *Server) handleInsertAd(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var probe struct {
		Domain string `json:"domain"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if probe.Domain == "" {
		jsonError(w, http.StatusBadRequest, "missing domain field")
		return
	}
	var p *Proxied
	if pin := r.Header.Get(webui.AdIDHeader); pin != "" {
		p, err = s.rt.ForwardAdPinned(r.Context(), probe.Domain, body, pin)
	} else {
		p, err = s.rt.ForwardAd(r.Context(), probe.Domain, body)
	}
	if err != nil {
		jsonError(w, routeErrorStatus(err), "%v", err)
		return
	}
	proxy(w, p)
}

// handleRebalance admits one live partition move.
func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	if s.reb == nil {
		jsonError(w, http.StatusNotImplemented, "no rebalance coordinator configured")
		return
	}
	var req RebalanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if err := s.reb.Start(req); err != nil {
		jsonError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]string{"state": "started"})
}

// handleDeleteAd forwards an expiry to the owning shard.
func (s *Server) handleDeleteAd(w http.ResponseWriter, r *http.Request) {
	domain := r.URL.Query().Get("domain")
	if domain == "" {
		jsonError(w, http.StatusBadRequest, "missing domain parameter")
		return
	}
	p, err := s.rt.ForwardDelete(r.Context(), domain, r.PathValue("id"))
	if err != nil {
		jsonError(w, routeErrorStatus(err), "%v", err)
		return
	}
	proxy(w, p)
}

// Cluster health states served by the front tier's /healthz.
const (
	// ClusterServing: every shard is reachable and serving.
	ClusterServing = "serving"
	// ClusterDegraded: at least one shard is unreachable or unhealthy;
	// its domains answer empty with errors, the rest serve normally.
	ClusterDegraded = "degraded"
	// ClusterDown: no shard answered; the front tier cannot serve.
	ClusterDown = "down"
)

// rollup folds per-shard health into one cluster state.
func rollup(views []ShardView) string {
	healthy := 0
	for _, v := range views {
		if v.Reachable && v.StatusCode == http.StatusOK && v.State == "serving" {
			healthy++
		}
	}
	switch healthy {
	case len(views):
		return ClusterServing
	case 0:
		return ClusterDown
	default:
		return ClusterDegraded
	}
}

// handleHealthz scatter-gathers shard /healthz probes into a cluster
// rollup: 200 while any shard serves (the front tier still answers
// the live domains), 503 only when the whole cluster is down.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	views := s.rt.ClusterHealth(r.Context())
	state := rollup(views)
	w.Header().Set("Content-Type", "application/json")
	if state == ClusterDown {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{"state": state, "shards": views})
}

// endpointRollup is one endpoint's cluster-wide merged latency: the
// shards' raw histogram buckets are integer-added (telemetry.Merge),
// so the rollup is exact to bucket resolution and associative —
// folding the shards in any order yields the same percentiles, which
// the merge-associativity test pins.
type endpointRollup struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// clusterLatency is the /api/status "cluster_latency" block.
type clusterLatency struct {
	// Shards is how many reachable shards contributed histograms.
	Shards   int            `json:"shards"`
	Ask      endpointRollup `json:"ask"`
	AskBatch endpointRollup `json:"ask_batch"`
	Ingest   endpointRollup `json:"ingest"`
	ReplPoll endpointRollup `json:"repl_poll"`
}

// shardLatencyWire is the slice of a shard's status body the rollup
// reads: each endpoint's raw bucket counts and nanosecond sum.
type shardLatencyWire struct {
	Latency struct {
		Ask      endpointWire `json:"ask"`
		AskBatch endpointWire `json:"ask_batch"`
		Ingest   endpointWire `json:"ingest"`
		ReplPoll endpointWire `json:"repl_poll"`
	} `json:"latency"`
}

type endpointWire struct {
	SumNs   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets"`
}

// rollupLatency merges every reachable shard's latency block.
func rollupLatency(views []ShardView) clusterLatency {
	var out clusterLatency
	var ask, askBatch, ingest, replPoll telemetry.Snapshot
	for _, v := range views {
		if v.Body == nil {
			continue
		}
		var wire shardLatencyWire
		if json.Unmarshal(v.Body, &wire) != nil {
			continue
		}
		out.Shards++
		ask = ask.Merge(telemetry.SnapshotFromWire(wire.Latency.Ask.Buckets, wire.Latency.Ask.SumNs))
		askBatch = askBatch.Merge(telemetry.SnapshotFromWire(wire.Latency.AskBatch.Buckets, wire.Latency.AskBatch.SumNs))
		ingest = ingest.Merge(telemetry.SnapshotFromWire(wire.Latency.Ingest.Buckets, wire.Latency.Ingest.SumNs))
		replPoll = replPoll.Merge(telemetry.SnapshotFromWire(wire.Latency.ReplPoll.Buckets, wire.Latency.ReplPoll.SumNs))
	}
	render := func(s telemetry.Snapshot) endpointRollup {
		ms := func(ns int64) float64 { return float64(ns) / 1e6 }
		return endpointRollup{
			Count:  int64(s.Count),
			MeanMs: s.Mean() / 1e6,
			P50Ms:  ms(s.Quantile(0.50)),
			P99Ms:  ms(s.Quantile(0.99)),
			P999Ms: ms(s.Quantile(0.999)),
		}
	}
	out.Ask = render(ask)
	out.AskBatch = render(askBatch)
	out.Ingest = render(ingest)
	out.ReplPoll = render(replPoll)
	return out
}

// handleStatus scatter-gathers shard /api/status reports into one
// cluster view, each shard's own report embedded verbatim, plus:
// "cluster_latency", the exact cluster-wide merge of every shard's raw
// latency histograms; the front tier's own "front" block (per-group
// read latency as observed from this router, the hedge delay in force,
// and the process-wide hedge counters); and "rebalance", the
// coordinator's progress when one is configured. All counts are
// cumulative and monotonic — there is no reset — matching the scrape
// contract of a shard's own latency block.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	views := s.rt.ClusterStatus(r.Context())
	reachable := 0
	for _, v := range views {
		if v.Reachable {
			reachable++
		}
	}
	out := map[string]any{
		"cluster": map[string]any{
			"shards_total":     len(views),
			"shards_reachable": reachable,
		},
		"cluster_latency": rollupLatency(views),
		"front": map[string]any{
			"hedges":     telemetry.Front.Hedges.Load(),
			"hedge_wins": telemetry.Front.HedgeWins.Load(),
			"groups":     s.rt.GroupLatencies(),
		},
		"shards": views,
	}
	if s.reb != nil {
		progress, active := s.reb.Status()
		out["rebalance"] = map[string]any{"active": active, "progress": progress}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
