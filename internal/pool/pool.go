// Package pool provides the one worker-pool primitive shared by the
// batch Ask/ingest APIs and the experiment drivers: fan a slice out
// to workers, collect results in input order.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map applies f to every item on a pool of workers goroutines and
// returns the results in input order, so downstream aggregation stays
// deterministic. Work is distributed via an atomic counter (cheaper
// than a channel for uniform small tasks). workers <= 0 uses
// GOMAXPROCS. f must be safe for concurrent invocation.
//
// A panic in f is isolated to its item: the worker recovers, the
// remaining items still run, and after all work completes Map
// re-panics with the first captured panic value — the caller sees the
// failure on its own goroutine instead of a process-killing crash on
// an anonymous worker.
func Map[T, R any](items []T, workers int, f func(int, T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								panicked = fmt.Errorf("pool: item %d panicked: %v", i, r)
							})
						}
					}()
					out[i] = f(i, items[i])
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}
