// Package pool provides the one worker-pool primitive shared by the
// batch Ask API and the experiment drivers: fan a slice out to
// workers, collect results in input order.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map applies f to every item on a pool of workers goroutines and
// returns the results in input order, so downstream aggregation stays
// deterministic. Work is distributed via an atomic counter (cheaper
// than a channel for uniform small tasks). workers <= 0 uses
// GOMAXPROCS. f must be safe for concurrent invocation.
func Map[T, R any](items []T, workers int, f func(int, T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i] = f(i, items[i])
			}
		}()
	}
	wg.Wait()
	return out
}
