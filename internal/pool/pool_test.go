package pool

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering: results land at their input index regardless of
// completion order (later items finish first here).
func TestMapOrdering(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	out := Map(items, 8, func(i, v int) int {
		time.Sleep(time.Duration(len(items)-i) * 100 * time.Microsecond)
		return v * v
	})
	if len(out) != len(items) {
		t.Fatalf("len = %d, want %d", len(out), len(items))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapEmptyInput: zero questions return an empty (non-nil) result
// without spawning workers.
func TestMapEmptyInput(t *testing.T) {
	called := false
	out := Map(nil, 4, func(i int, v string) string {
		called = true
		return v
	})
	if out == nil || len(out) != 0 {
		t.Fatalf("Map(nil) = %#v, want empty slice", out)
	}
	if called {
		t.Error("f called for empty input")
	}
}

// TestMapWorkerResolution pins the pool-size rules: workers <= 0
// falls back to GOMAXPROCS, and the pool never exceeds the item
// count.
func TestMapWorkerResolution(t *testing.T) {
	concurrent := func(items, workers int) int {
		var cur, max atomic.Int64
		var mu sync.Mutex
		gate := make(chan struct{})
		var once sync.Once
		in := make([]int, items)
		Map(in, workers, func(i, v int) int {
			n := cur.Add(1)
			mu.Lock()
			if n > max.Load() {
				max.Store(n)
			}
			mu.Unlock()
			// Hold every worker until all are started so the peak
			// concurrency is observable, then release together.
			once.Do(func() {
				go func() {
					time.Sleep(20 * time.Millisecond)
					close(gate)
				}()
			})
			<-gate
			cur.Add(-1)
			return 0
		})
		return int(max.Load())
	}
	if got := concurrent(32, 4); got != 4 {
		t.Errorf("peak concurrency with 4 workers = %d", got)
	}
	// More workers than items: capped at the item count.
	if got := concurrent(3, 16); got > 3 {
		t.Errorf("peak concurrency with 3 items = %d, want <= 3", got)
	}
	// workers <= 0 resolves to GOMAXPROCS.
	if got, limit := concurrent(64, 0), runtime.GOMAXPROCS(0); got > limit {
		t.Errorf("peak concurrency with workers=0 = %d, want <= GOMAXPROCS (%d)", got, limit)
	}
}

// TestMapPanicIsolation: a panicking item doesn't kill sibling items
// or deadlock Map; the panic resurfaces on the caller's goroutine
// after the rest of the batch completes.
func TestMapPanicIsolation(t *testing.T) {
	var processed atomic.Int64
	items := make([]int, 20)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Map swallowed the panic")
			}
			if msg, ok := r.(error); !ok || !strings.Contains(msg.Error(), "boom") {
				t.Fatalf("re-panicked with %v, want the original panic value wrapped", r)
			}
		}()
		Map(items, 4, func(i, v int) int {
			if i == 7 {
				panic("boom")
			}
			processed.Add(1)
			return v
		})
	}()
	if got := processed.Load(); got != int64(len(items)-1) {
		t.Errorf("processed %d items, want %d (panic must not cancel siblings)", got, len(items)-1)
	}
}
