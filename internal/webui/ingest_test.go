package webui

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/adsgen"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/sqldb"
)

// ingestServer builds a private server (not the shared srvOnce one) so
// mutations don't leak into the read-only handler tests.
func ingestServer(t *testing.T) *Server {
	t.Helper()
	db, err := adsgen.PopulateAll(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(core.Config{DB: db, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(sys)
}

func doJSON(t *testing.T, srv *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rdr *strings.Reader
	if body == "" {
		rdr = strings.NewReader("")
	} else {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rdr)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestPostAdThenAskThenDelete(t *testing.T) {
	srv := ingestServer(t)
	rec := doJSON(t, srv, http.MethodPost, "/api/ads",
		`{"domain":"cars","record":{"make":"lexus","model":"es350","color":"gold","price":31337}}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /api/ads = %d: %s", rec.Code, rec.Body.String())
	}
	var created struct {
		Domain string `json:"domain"`
		ID     int    `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.Domain != "cars" {
		t.Fatalf("created in domain %q", created.Domain)
	}

	// The freshly POSTed ad answers the next question.
	ask := doJSON(t, srv, http.MethodGet, "/api/ask?domain=cars&q=gold+lexus+es350", "")
	if ask.Code != http.StatusOK {
		t.Fatalf("ask = %d: %s", ask.Code, ask.Body.String())
	}
	var res struct {
		ExactCount int `json:"exact_count"`
		Answers    []struct {
			Exact  bool              `json:"exact"`
			Record map[string]string `json:"record"`
		} `json:"answers"`
	}
	if err := json.Unmarshal(ask.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Answers {
		if a.Exact && a.Record["price"] == "31337" {
			found = true
		}
	}
	if !found {
		t.Fatalf("POSTed ad not among answers: %s", ask.Body.String())
	}

	// DELETE expires it; asking again no longer returns it.
	del := doJSON(t, srv, http.MethodDelete, fmt.Sprintf("/api/ads/%d?domain=cars", created.ID), "")
	if del.Code != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", del.Code, del.Body.String())
	}
	ask = doJSON(t, srv, http.MethodGet, "/api/ask?domain=cars&q=gold+lexus+es350", "")
	if err := json.Unmarshal(ask.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers {
		if a.Record["price"] == "31337" {
			t.Fatalf("deleted ad still served: %s", ask.Body.String())
		}
	}
	// Deleting again 404s.
	if del := doJSON(t, srv, http.MethodDelete, fmt.Sprintf("/api/ads/%d?domain=cars", created.ID), ""); del.Code != http.StatusNotFound {
		t.Fatalf("double DELETE = %d, want 404", del.Code)
	}
}

func TestPostAdValidation(t *testing.T) {
	srv := ingestServer(t)
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown domain", `{"domain":"starships","record":{}}`, http.StatusNotFound},
		{"unknown column", `{"domain":"cars","record":{"warp":9}}`, http.StatusBadRequest},
		{"non-numeric quantitative", `{"domain":"cars","record":{"price":"cheap"}}`, http.StatusBadRequest},
		{"unsupported value", `{"domain":"cars","record":{"make":["a","b"]}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := doJSON(t, srv, http.MethodPost, "/api/ads", c.body); rec.Code != c.want {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body.String())
		}
	}
	// Numeric strings are accepted for quantitative columns, nulls
	// store NULL.
	rec := doJSON(t, srv, http.MethodPost, "/api/ads",
		`{"domain":"cars","record":{"make":"kia","price":"4200","mileage":null}}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("numeric-string insert = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestStatusEndpointPersistent: a durable server reports its
// checkpoint/WAL state through /api/status, and the logged sequence
// advances with ingestion.
func TestStatusEndpointPersistent(t *testing.T) {
	db, err := adsgen.PopulateAll(7, 50)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Open(core.Config{DB: db, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := NewServer(sys)

	status := func() (out struct {
		Persistence struct {
			Enabled        bool   `json:"enabled"`
			Dir            string `json:"dir"`
			Seq            uint64 `json:"seq"`
			CheckpointSeq  uint64 `json:"checkpoint_seq"`
			WALBytes       int64  `json:"wal_bytes"`
			LastCheckpoint string `json:"last_checkpoint"`
		} `json:"persistence"`
	}) {
		rec := doJSON(t, srv, http.MethodGet, "/api/status", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	st := status()
	if !st.Persistence.Enabled || st.Persistence.Dir == "" {
		t.Fatalf("persistence block = %+v, want enabled with dir", st.Persistence)
	}
	if st.Persistence.LastCheckpoint == "" {
		t.Error("initial checkpoint not reported")
	}
	before := st.Persistence.Seq
	rec := doJSON(t, srv, http.MethodPost, "/api/ads",
		`{"domain":"cars","record":{"make":"kia","price":4200}}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST = %d: %s", rec.Code, rec.Body.String())
	}
	st = status()
	if st.Persistence.Seq != before+1 {
		t.Errorf("seq after ingest = %d, want %d", st.Persistence.Seq, before+1)
	}
	if st.Persistence.WALBytes <= 0 {
		t.Errorf("wal_bytes after ingest = %d, want > 0", st.Persistence.WALBytes)
	}
}

// TestConvertRecordCoercesBySchemaType is the regression test for the
// categorical-number bug: a JSON number POSTed for a Type I/II column
// used to be stored as sqldb.Number, which never matches the
// string-indexed machinery (trigram index, TI/WS similarity). It must
// be coerced to the schema's value class instead.
func TestConvertRecordCoercesBySchemaType(t *testing.T) {
	sch := schema.Cars()
	values, err := convertRecord(sch, map[string]any{
		"doors": float64(2),     // Type II ← JSON number
		"make":  "HONDA",        // Type I  ← string (lower-cased on store)
		"price": float64(12000), // Type III ← JSON number
		"year":  "2004",         // Type III ← numeric string
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := values["doors"]; !v.IsString() || v.Str() != "2" {
		t.Errorf("doors = %#v, want the string \"2\"", v)
	}
	if v := values["price"]; !v.IsNumber() || v.Num() != 12000 {
		t.Errorf("price = %#v, want Number(12000)", v)
	}
	if v := values["year"]; !v.IsNumber() || v.Num() != 2004 {
		t.Errorf("year = %#v, want Number(2004)", v)
	}

	// End to end: the numeric-categorical ad lands string-indexed.
	srv := ingestServer(t)
	rec := doJSON(t, srv, http.MethodPost, "/api/ads",
		`{"domain":"cars","record":{"make":"kia","model":"sorento","doors":2}}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST = %d: %s", rec.Code, rec.Body.String())
	}
	var created struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	tbl, _ := srv.sys.DB().TableForDomain("cars")
	id := sqldb.RowID(created.ID)
	if v := tbl.Value(id, "doors"); !v.IsString() {
		t.Fatalf("stored doors = %#v, want a string", v)
	}
	found := false
	for _, got := range tbl.LookupSubstring("doors", "2") {
		if got == id {
			found = true
		}
	}
	if !found {
		t.Error("numeric-categorical value missing from the substring index")
	}
}

func TestDeleteAdValidation(t *testing.T) {
	srv := ingestServer(t)
	if rec := doJSON(t, srv, http.MethodDelete, "/api/ads/0", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("missing domain = %d, want 400", rec.Code)
	}
	if rec := doJSON(t, srv, http.MethodDelete, "/api/ads/notanumber?domain=cars", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad id = %d, want 400", rec.Code)
	}
	if rec := doJSON(t, srv, http.MethodDelete, "/api/ads/999999?domain=cars", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown row = %d, want 404", rec.Code)
	}
}
