package webui

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/adsgen"
	"repro/internal/core"
)

// ingestServer builds a private server (not the shared srvOnce one) so
// mutations don't leak into the read-only handler tests.
func ingestServer(t *testing.T) *Server {
	t.Helper()
	db, err := adsgen.PopulateAll(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(core.Config{DB: db, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(sys)
}

func doJSON(t *testing.T, srv *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rdr *strings.Reader
	if body == "" {
		rdr = strings.NewReader("")
	} else {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rdr)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestPostAdThenAskThenDelete(t *testing.T) {
	srv := ingestServer(t)
	rec := doJSON(t, srv, http.MethodPost, "/api/ads",
		`{"domain":"cars","record":{"make":"lexus","model":"es350","color":"gold","price":31337}}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /api/ads = %d: %s", rec.Code, rec.Body.String())
	}
	var created struct {
		Domain string `json:"domain"`
		ID     int    `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.Domain != "cars" {
		t.Fatalf("created in domain %q", created.Domain)
	}

	// The freshly POSTed ad answers the next question.
	ask := doJSON(t, srv, http.MethodGet, "/api/ask?domain=cars&q=gold+lexus+es350", "")
	if ask.Code != http.StatusOK {
		t.Fatalf("ask = %d: %s", ask.Code, ask.Body.String())
	}
	var res struct {
		ExactCount int `json:"exact_count"`
		Answers    []struct {
			Exact  bool              `json:"exact"`
			Record map[string]string `json:"record"`
		} `json:"answers"`
	}
	if err := json.Unmarshal(ask.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Answers {
		if a.Exact && a.Record["price"] == "31337" {
			found = true
		}
	}
	if !found {
		t.Fatalf("POSTed ad not among answers: %s", ask.Body.String())
	}

	// DELETE expires it; asking again no longer returns it.
	del := doJSON(t, srv, http.MethodDelete, fmt.Sprintf("/api/ads/%d?domain=cars", created.ID), "")
	if del.Code != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", del.Code, del.Body.String())
	}
	ask = doJSON(t, srv, http.MethodGet, "/api/ask?domain=cars&q=gold+lexus+es350", "")
	if err := json.Unmarshal(ask.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers {
		if a.Record["price"] == "31337" {
			t.Fatalf("deleted ad still served: %s", ask.Body.String())
		}
	}
	// Deleting again 404s.
	if del := doJSON(t, srv, http.MethodDelete, fmt.Sprintf("/api/ads/%d?domain=cars", created.ID), ""); del.Code != http.StatusNotFound {
		t.Fatalf("double DELETE = %d, want 404", del.Code)
	}
}

func TestPostAdValidation(t *testing.T) {
	srv := ingestServer(t)
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown domain", `{"domain":"starships","record":{}}`, http.StatusNotFound},
		{"unknown column", `{"domain":"cars","record":{"warp":9}}`, http.StatusBadRequest},
		{"non-numeric quantitative", `{"domain":"cars","record":{"price":"cheap"}}`, http.StatusBadRequest},
		{"unsupported value", `{"domain":"cars","record":{"make":["a","b"]}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := doJSON(t, srv, http.MethodPost, "/api/ads", c.body); rec.Code != c.want {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body.String())
		}
	}
	// Numeric strings are accepted for quantitative columns, nulls
	// store NULL.
	rec := doJSON(t, srv, http.MethodPost, "/api/ads",
		`{"domain":"cars","record":{"make":"kia","price":"4200","mileage":null}}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("numeric-string insert = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestDeleteAdValidation(t *testing.T) {
	srv := ingestServer(t)
	if rec := doJSON(t, srv, http.MethodDelete, "/api/ads/0", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("missing domain = %d, want 400", rec.Code)
	}
	if rec := doJSON(t, srv, http.MethodDelete, "/api/ads/notanumber?domain=cars", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad id = %d, want 400", rec.Code)
	}
	if rec := doJSON(t, srv, http.MethodDelete, "/api/ads/999999?domain=cars", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown row = %d, want 404", rec.Code)
	}
}
