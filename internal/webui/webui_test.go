package webui

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/adsgen"
	"repro/internal/core"
)

var (
	srvOnce sync.Once
	srv     *Server
	srvErr  error
)

func server(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() {
		db, err := adsgen.PopulateAll(42, 200)
		if err != nil {
			srvErr = err
			return
		}
		sys, err := core.New(core.Config{DB: db})
		if err != nil {
			srvErr = err
			return
		}
		srv = NewServer(sys)
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

func get(t *testing.T, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	server(t).ServeHTTP(rec, req)
	return rec
}

func TestIndexServesForm(t *testing.T) {
	rec := get(t, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"<form", "auto-classify", "cars", "jewellery"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestIndexNotFoundForOtherPaths(t *testing.T) {
	if rec := get(t, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestAskRendersAnswerTable(t *testing.T) {
	rec := get(t, "/ask?domain=cars&q=red+honda+under+%249000")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"interpretation:", "SQL:", "<table>", "make", "price",
		"class=\"exact\"",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("answer page missing %q", want)
		}
	}
}

func TestAskPartialAnswersShowMeasure(t *testing.T) {
	rec := get(t, "/ask?domain=cars&q=honda+accord+blue+less+than+15000+dollars")
	body := rec.Body.String()
	if !strings.Contains(body, "class=\"partial\"") {
		t.Skip("no partial answers for this seed")
	}
	if !strings.Contains(body, "Sim") {
		t.Error("partial rows missing similarity measure")
	}
}

func TestAskEmptyQueryShowsForm(t *testing.T) {
	rec := get(t, "/ask?q=")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "<form") {
		t.Errorf("empty query should render the form (status %d)", rec.Code)
	}
}

func TestAskUnknownDomainShowsError(t *testing.T) {
	rec := get(t, "/ask?domain=ghost&q=anything")
	if !strings.Contains(rec.Body.String(), "unknown domain") {
		t.Error("error not surfaced")
	}
}

func TestAPIAsk(t *testing.T) {
	rec := get(t, "/api/ask?domain=cars&q=red+honda")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Domain     string `json:"domain"`
		SQL        string `json:"sql"`
		ExactCount int    `json:"exact_count"`
		Answers    []struct {
			Exact  bool              `json:"exact"`
			Record map[string]string `json:"record"`
		} `json:"answers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.Domain != "cars" || !strings.Contains(out.SQL, "SELECT") {
		t.Errorf("payload = %+v", out)
	}
	if len(out.Answers) == 0 {
		t.Fatal("no answers")
	}
	for _, a := range out.Answers[:out.ExactCount] {
		if a.Record["make"] != "honda" || a.Record["color"] != "red" {
			t.Errorf("exact answer mismatch: %v", a.Record)
		}
	}
}

// TestAPIMissingQuery: the missing-q error is a real JSON error
// response — correct Content-Type and a decodable body, not a JSON
// string shipped as text/plain via http.Error.
func TestAPIMissingQuery(t *testing.T) {
	rec := get(t, "/api/ask")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out.Error == "" {
		t.Errorf("body %q not a JSON error payload (%v)", rec.Body.String(), err)
	}
}

// TestAPIErrorsAreJSON: every /api/ask failure path carries the JSON
// Content-Type.
func TestAPIErrorsAreJSON(t *testing.T) {
	rec := get(t, "/api/ask?domain=ghost&q=anything")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
}

// TestAPIEmptyAnswersIsArray: a query matching nothing must encode
// "answers": [] rather than "answers": null.
func TestAPIEmptyAnswersIsArray(t *testing.T) {
	rec := get(t, "/api/ask?domain=cars&q=zzzzqqqq")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"answers":[]`) {
		t.Errorf("no-match response = %s, want \"answers\":[]", rec.Body.String())
	}
	var out struct {
		Answers []any `json:"answers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Answers == nil {
		t.Error("answers decoded as nil slice")
	}
}

// TestStatusEndpoint: GET /api/status reports one entry per domain
// with sane counts, and a disabled persistence block for an in-memory
// server.
func TestStatusEndpoint(t *testing.T) {
	rec := get(t, "/api/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var out struct {
		Domains []struct {
			Domain  string `json:"domain"`
			Live    int    `json:"live"`
			Slots   int    `json:"slots"`
			Version uint64 `json:"version"`
		} `json:"domains"`
		Persistence struct {
			Enabled bool `json:"enabled"`
		} `json:"persistence"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Domains) == 0 {
		t.Fatal("no domains in status")
	}
	seenCars := false
	for _, d := range out.Domains {
		if d.Domain == "cars" {
			seenCars = true
		}
		if d.Live <= 0 || d.Slots < d.Live {
			t.Errorf("domain %s: live %d slots %d", d.Domain, d.Live, d.Slots)
		}
	}
	if !seenCars {
		t.Error("cars domain missing from status")
	}
	if out.Persistence.Enabled {
		t.Error("in-memory server reports persistence enabled")
	}
}

// TestStatusPlanCache: the plan_cache block reports the process-wide
// compile/hit tallies, and asking a question moves them.
func TestStatusPlanCache(t *testing.T) {
	readPlanCache := func() (hits, misses, size int64) {
		rec := get(t, "/api/status")
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		var out struct {
			PlanCache struct {
				Hits          int64 `json:"hits"`
				Misses        int64 `json:"misses"`
				Invalidations int64 `json:"invalidations"`
				Size          int64 `json:"size"`
			} `json:"plan_cache"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out.PlanCache.Hits, out.PlanCache.Misses, out.PlanCache.Size
	}
	hits0, misses0, _ := readPlanCache()
	// Counters are process-wide, and earlier tests may already have
	// cached this shape — assert on lookup deltas, not absolutes.
	if rec := get(t, "/api/ask?domain=cars&q=blue+toyota+under+%247000"); rec.Code != http.StatusOK {
		t.Fatalf("ask status = %d", rec.Code)
	}
	hits1, misses1, size1 := readPlanCache()
	if hits1+misses1 <= hits0+misses0 {
		t.Errorf("plan-cache lookups did not move: %d+%d -> %d+%d", hits0, misses0, hits1, misses1)
	}
	if size1 <= 0 {
		t.Errorf("plan cache size = %d after a query", size1)
	}
	if rec := get(t, "/api/ask?domain=cars&q=blue+toyota+under+%247000"); rec.Code != http.StatusOK {
		t.Fatalf("ask status = %d", rec.Code)
	}
	hits2, misses2, _ := readPlanCache()
	if hits2 <= hits1 {
		t.Errorf("repeat ask did not hit the plan cache: hits %d -> %d", hits1, hits2)
	}
	if misses2 != misses1 {
		t.Errorf("repeat ask recompiled: misses %d -> %d", misses1, misses2)
	}
}

func TestSuggest(t *testing.T) {
	rec := get(t, "/api/suggest?domain=cars&prefix=ho")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out []string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range out {
		if s == "honda" {
			found = true
		}
		if !strings.HasPrefix(s, "ho") {
			t.Errorf("suggestion %q lacks prefix", s)
		}
	}
	if !found {
		t.Errorf("suggestions = %v, want honda included", out)
	}
}

func TestSuggestEmptyCases(t *testing.T) {
	for _, path := range []string{
		"/api/suggest",                        // no domain, no prefix
		"/api/suggest?domain=ghost&prefix=x",  // unknown domain
		"/api/suggest?domain=cars&prefix=zzz", // no matches
	} {
		rec := get(t, path)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status %d", path, rec.Code)
		}
		var out []string
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Errorf("%s: bad JSON %q", path, rec.Body.String())
		}
	}
}

func TestExplainPanel(t *testing.T) {
	rec := get(t, "/ask?domain=cars&q=red+honda+under+%249000&explain=1")
	body := rec.Body.String()
	for _, want := range []string{
		"primary hash index lookup",
		"ordered index range scan",
		"streaming plan:",
		"driving scan:",
		"plan cache:",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("explain panel missing %q", want)
		}
	}
	// The question just executed through the cache, so the panel
	// reports its shape as cached.
	if !strings.Contains(body, "plan cache: hit") {
		t.Error("explain panel did not report a plan-cache hit for the shape it just ran")
	}
	// Without explain=1 the plan is absent.
	rec = get(t, "/ask?domain=cars&q=red+honda+under+%249000")
	if strings.Contains(rec.Body.String(), "primary hash index lookup") {
		t.Error("plan shown without explain=1")
	}
}

func TestHTMLEscaping(t *testing.T) {
	rec := get(t, "/ask?domain=cars&q=%3Cscript%3Ealert(1)%3C/script%3E")
	body := rec.Body.String()
	if strings.Contains(body, "<script>alert") {
		t.Error("unescaped question reflected into HTML")
	}
}

// TestConcurrentRequests exercises the handler from many goroutines
// (run with -race): the System behind it must be safe for the web
// server's concurrency.
func TestConcurrentRequests(t *testing.T) {
	paths := []string{
		"/ask?domain=cars&q=red+honda+under+%249000",
		"/ask?domain=cars&q=honda+accord+blue+less+than+15000+dollars",
		"/api/ask?domain=cars&q=cheapest+toyota",
		"/api/suggest?domain=cars&prefix=ho",
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				path := paths[(w+i)%len(paths)]
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				server(t).ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("%s: status %d", path, rec.Code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
