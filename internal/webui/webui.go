// Package webui provides the HTML front end the paper describes in
// Sec. 4.5: "The answers are displayed on an HTML interface in a
// tabular manner." It wraps a core.System in an http.Handler with a
// question form, a tabular answer view that distinguishes exact from
// ranked partial matches (showing Rank_Sim and the similarity measure
// used, as in Table 2), and a JSON API for programmatic use.
package webui

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/metrics/telemetry"
	"repro/internal/partition"
	"repro/internal/persist"
	"repro/internal/replica/router"
	"repro/internal/schema"
	"repro/internal/sql"
	"repro/internal/sqldb"
)

// Promoter flips a follower writable and stops its replication stream
// — implemented by replica.Follower and wired in by the process that
// owns the tail loop.
type Promoter interface {
	Promote() error
}

// Failover is the election agent's HTTP surface — implemented by
// failover.Agent. The server exposes its lease protocol at
// POST /api/repl/heartbeat and /api/repl/vote and its leader view at
// GET /api/repl/leader.
type Failover interface {
	Leader() (url string, epoch uint64, role string)
	HandleHeartbeat(failover.Heartbeat) failover.HeartbeatResponse
	HandleVote(failover.VoteRequest) failover.VoteResponse
}

// Options configures the optional replication roles of a Server.
type Options struct {
	// Router, when set, makes POST /api/ask/batch scatter question
	// chunks across the healthy read replicas it tracks and gather the
	// answers; questions whose chunk fails are answered locally, so
	// the endpoint degrades to local execution rather than erroring.
	Router *router.Router
	// Promoter, when set, serves POST /api/repl/promote — flipping
	// this follower writable for manual failover. Without it the
	// endpoint falls back to core.System.Promote (no stream to stop).
	Promoter Promoter
	// Failover, when set, wires this node into a self-healing replica
	// set: heartbeats and votes are served to peers, and
	// GET /api/repl/leader answers with the agent's live view instead
	// of this node's static storage role.
	Failover Failover
}

// Server is the HTTP front end over a running CQAds instance.
type Server struct {
	sys  *core.System
	mux  *http.ServeMux
	tpl  *template.Template
	opts Options
}

// NewServer wraps sys. The handler serves:
//
//	GET /                     the question form
//	GET /ask?q=...            HTML answer table (optional &domain=...)
//	GET /api/ask?q=...        JSON answers
//	POST /api/ask/batch       JSON answers for many questions at once
//	GET /api/status           corpus versions + persistence/replication state
//	GET /healthz              cheap liveness probe (serving/recovering/write-failed)
//	POST /api/ads             ingest one ad: {"domain": ..., "record": {...}}
//	DELETE /api/ads/{id}      expire an ad (?domain=... required)
//	GET /api/repl/snapshot    replication: initial state transfer (?partition= filters to a hash slice)
//	GET /api/repl/wal?from=N  replication: long-polled framed op stream
//	POST /api/repl/promote    replication: flip this follower writable
//	POST /api/partition/retire  rebalance: narrow this node's hosted hash slice
//	GET /api/repl/leader      failover: who leads this replica set
//	POST /api/repl/heartbeat  failover: leader lease renewal
//	POST /api/repl/vote       failover: election ballot
//
// The ingestion endpoints mutate the live store (an ad POSTed here is
// returned by /api/ask seconds — in fact, immediately — later, and a
// DELETEd ad stops appearing at once) and take an optional
// ?ack=local|quorum durability level: quorum writes confirm only after
// a majority of the replica set has durably applied them (202 when the
// quorum wait times out — applied locally, unconfirmed). The /api/repl
// endpoints are the WAL-shipping and failover protocol: a durable
// primary serves snapshot + wal to followers (internal/replica), every
// set member serves heartbeat/vote/leader (internal/failover), and a
// follower serves promote.
func NewServer(sys *core.System) *Server { return NewServerWith(sys, Options{}) }

// NewServerWith is NewServer plus replication-role options.
func NewServerWith(sys *core.System, opts Options) *Server {
	s := &Server{
		sys:  sys,
		mux:  http.NewServeMux(),
		tpl:  template.Must(template.New("page").Parse(pageTemplate)),
		opts: opts,
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/ask", s.handleAsk)
	s.mux.HandleFunc("/api/ask", timed(&telemetry.Latency.Ask, s.handleAPI))
	s.mux.HandleFunc("POST /api/ask/batch", timed(&telemetry.Latency.AskBatch, s.handleAskBatch))
	s.mux.HandleFunc("/api/suggest", s.handleSuggest)
	s.mux.HandleFunc("GET /api/status", s.handleStatus)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /api/ads", timed(&telemetry.Latency.Ingest, s.handleInsertAd))
	s.mux.HandleFunc("DELETE /api/ads/{id}", timed(&telemetry.Latency.Ingest, s.handleDeleteAd))
	s.mux.HandleFunc("GET /api/repl/snapshot", s.handleReplSnapshot)
	s.mux.HandleFunc("GET /api/repl/wal", timed(&telemetry.Latency.ReplPoll, s.handleReplWAL))
	s.mux.HandleFunc("POST /api/repl/promote", s.handleReplPromote)
	s.mux.HandleFunc("POST /api/partition/retire", s.handlePartitionRetire)
	s.mux.HandleFunc("GET /api/repl/leader", s.handleReplLeader)
	s.mux.HandleFunc("POST /api/repl/heartbeat", s.handleReplHeartbeat)
	s.mux.HandleFunc("POST /api/repl/vote", s.handleReplVote)
	return s
}

// handleSuggest serves keyword autocompletion from the domain trie:
// GET /api/suggest?domain=cars&prefix=ho → ["honda", ...].
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	domain := r.URL.Query().Get("domain")
	prefix := strings.ToLower(strings.TrimSpace(r.URL.Query().Get("prefix")))
	w.Header().Set("Content-Type", "application/json")
	tagger := s.sys.Tagger(domain)
	if tagger == nil || prefix == "" {
		_, _ = w.Write([]byte("[]"))
		return
	}
	suggestions := tagger.Trie.Suggest(prefix, 10)
	if suggestions == nil {
		suggestions = []string{}
	}
	_ = json.NewEncoder(w).Encode(suggestions)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// jsonError writes a JSON error payload with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleStatus reports the live corpus, durability and replication
// state:
//
//	GET /api/status
//
// Per domain: live ad count, allocated RowID slots, and the table's
// mutation version. The persistence block reports whether the server
// is durable and, when it is, the last logged operation sequence, the
// sequence the on-disk snapshot covers, the current WAL size, and the
// wall time of the last checkpoint — the numbers an operator needs to
// judge replay distance after a crash. The replication block reports
// the node's role, its applied/observed sequence cursors and lag, plus
// the process-wide shipping counters (ops shipped and applied,
// snapshot transfers, last observed lag).
//
// The latency block reports, per instrumented endpoint (ask,
// ask_batch, ingest, repl_poll), the cumulative request count and the
// mean/p50/p90/p99/p999 service times in milliseconds. Counts and
// histogram mass are monotonic for the process lifetime — there is
// deliberately no reset parameter, so scrapers derive rates and
// interval percentiles by differencing successive samples and can
// never corrupt each other's view.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Status()
	type domainJSON struct {
		Domain  string `json:"domain"`
		Live    int    `json:"live"`
		Slots   int    `json:"slots"`
		Version uint64 `json:"version"`
	}
	type persistenceJSON struct {
		Enabled        bool   `json:"enabled"`
		Dir            string `json:"dir,omitempty"`
		Seq            uint64 `json:"seq,omitempty"`
		CheckpointSeq  uint64 `json:"checkpoint_seq,omitempty"`
		WALBytes       int64  `json:"wal_bytes,omitempty"`
		LastCheckpoint string `json:"last_checkpoint,omitempty"`
		Failed         bool   `json:"failed,omitempty"`
		// LastCompactError surfaces a failing background compaction —
		// the only checkpoint path with no caller to return an error
		// to.
		LastCompactError string `json:"last_compact_error,omitempty"`
	}
	type replCountersJSON struct {
		OpsShipped       int64 `json:"ops_shipped"`
		OpsApplied       int64 `json:"ops_applied"`
		SnapshotsServed  int64 `json:"snapshots_served"`
		SnapshotsFetched int64 `json:"snapshots_fetched"`
		LagOps           int64 `json:"lag_ops"`
	}
	type replicationJSON struct {
		Role       string           `json:"role"`
		Epoch      uint64           `json:"epoch"`
		QuorumSize int              `json:"quorum_size"`
		AppliedSeq uint64           `json:"applied_seq"`
		PrimarySeq uint64           `json:"primary_seq"`
		LagOps     uint64           `json:"lag_ops"`
		ReadOnly   bool             `json:"read_only"`
		Counters   replCountersJSON `json:"counters"`
	}
	type admissionJSON struct {
		MaxWALBytes      int64 `json:"max_wal_bytes"`
		MaxPendingQuorum int   `json:"max_pending_quorum"`
		PendingQuorum    int   `json:"pending_quorum"`
	}
	type planCacheJSON struct {
		Hits          int64 `json:"hits"`
		Misses        int64 `json:"misses"`
		Invalidations int64 `json:"invalidations"`
		Size          int64 `json:"size"`
	}
	type partitionJSON struct {
		// Partitioned reports whether this node hosts a hash slice of
		// one domain rather than whole domains; Slice is the slice
		// currently hosted ("h0/1" — the whole key space — when not
		// partitioned). The slice narrows when a rebalance retires part
		// of it to another node.
		Partitioned bool   `json:"partitioned"`
		Slice       string `json:"slice"`
	}
	out := struct {
		Domains     []domainJSON    `json:"domains"`
		Partition   partitionJSON   `json:"partition"`
		Persistence persistenceJSON `json:"persistence"`
		Replication replicationJSON `json:"replication"`
		Admission   admissionJSON   `json:"admission"`
		PlanCache   planCacheJSON   `json:"plan_cache"`
		Latency     latencyJSON     `json:"latency"`
	}{Domains: []domainJSON{}, Latency: latencyStatus()}
	out.Partition = partitionJSON{
		Partitioned: s.sys.Partitioned(),
		Slice:       s.sys.PartitionSlice().String(),
	}
	out.PlanCache = planCacheJSON{
		Hits:          telemetry.Plan.Hits.Load(),
		Misses:        telemetry.Plan.Misses.Load(),
		Invalidations: telemetry.Plan.Invalidations.Load(),
		Size:          telemetry.Plan.Size.Load(),
	}
	for _, d := range st.Domains {
		out.Domains = append(out.Domains, domainJSON{
			Domain: d.Domain, Live: d.Live, Slots: d.Slots, Version: d.Version,
		})
	}
	out.Persistence = persistenceJSON{
		Enabled:          st.Persistence.Enabled,
		Dir:              st.Persistence.Dir,
		Seq:              st.Persistence.Seq,
		CheckpointSeq:    st.Persistence.CheckpointSeq,
		WALBytes:         st.Persistence.WALBytes,
		Failed:           st.Persistence.Failed,
		LastCompactError: st.Persistence.LastCompactError,
	}
	if !st.Persistence.LastCheckpoint.IsZero() {
		out.Persistence.LastCheckpoint = st.Persistence.LastCheckpoint.Format(time.RFC3339Nano)
	}
	out.Admission = admissionJSON{
		MaxWALBytes:      st.Admission.MaxWALBytes,
		MaxPendingQuorum: st.Admission.MaxPendingQuorum,
		PendingQuorum:    st.Admission.PendingQuorum,
	}
	out.Replication = replicationJSON{
		Role:       st.Replication.Role,
		Epoch:      st.Replication.Epoch,
		QuorumSize: st.Replication.QuorumSize,
		AppliedSeq: st.Replication.AppliedSeq,
		PrimarySeq: st.Replication.PrimarySeq,
		LagOps:     st.Replication.LagOps,
		ReadOnly:   st.Replication.ReadOnly,
		Counters: replCountersJSON{
			OpsShipped:       telemetry.Repl.OpsShipped.Load(),
			OpsApplied:       telemetry.Repl.OpsApplied.Load(),
			SnapshotsServed:  telemetry.Repl.SnapshotsServed.Load(),
			SnapshotsFetched: telemetry.Repl.SnapshotsFetched.Load(),
			LagOps:           telemetry.Repl.LagOps.Load(),
		},
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleHealthz is the cheap probe for load balancers and the
// replication router:
//
//	GET /healthz
//
// Body: {"state", "role", "epoch", "applied_seq", "lag_ops"}. State is
// one of
// "serving" (200), "write-failed" (200 — reads still work; the
// durability latch only refuses ingestion until restart), and
// "recovering" (503 — a follower is mid-re-bootstrap and reads may
// straddle old and new corpus; probes should steer traffic away until
// it clears).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	health := s.sys.Health()
	st := s.sys.Status().Replication
	w.Header().Set("Content-Type", "application/json")
	if health == core.HealthRecovering {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"state":       health,
		"role":        st.Role,
		"epoch":       st.Epoch,
		"applied_seq": st.AppliedSeq,
		"lag_ops":     st.LagOps,
	})
}

// handleInsertAd ingests one ad into a live domain:
//
//	POST /api/ads?ack=quorum
//	{"domain": "cars", "record": {"make": "honda", "price": 12000}}
//
// Values are converted against the domain schema: Type III columns
// take JSON numbers (or numeric strings), all others take strings.
// Missing columns store NULL. The ack parameter picks the durability
// level: "local" (default) confirms on the local fsync'd WAL append,
// "quorum" confirms only after a majority of the replica set has
// durably applied the insert. Responds 201 with {"domain", "id"} when
// confirmed; 202 with the same body plus "error" when a quorum write
// timed out gathering acks — the ad IS applied and locally durable,
// retrying would duplicate it.
func (s *Server) handleInsertAd(w http.ResponseWriter, r *http.Request) {
	ack, err := core.ParseAckLevel(r.URL.Query().Get("ack"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req struct {
		Domain string         `json:"domain"`
		Record map[string]any `json:"record"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	tbl, ok := s.sys.DB().TableForDomain(req.Domain)
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown domain %q", req.Domain)
		return
	}
	values, err := convertRecord(tbl.Schema(), req.Record)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var id sqldb.RowID
	if pinHdr := r.Header.Get(AdIDHeader); pinHdr != "" {
		// A pinned ingest (shard front tier re-routing an ad to the
		// partition owning its key): the ad must land on exactly this
		// RowID, and a node not owning the key's hash answers 421.
		pin, perr := strconv.Atoi(pinHdr)
		if perr != nil || pin < 0 {
			jsonError(w, http.StatusBadRequest, "invalid %s header %q", AdIDHeader, pinHdr)
			return
		}
		id, err = s.sys.InsertAdPinnedWithAck(req.Domain, values, sqldb.RowID(pin), ack)
	} else {
		id, err = s.sys.InsertAdWithAck(req.Domain, values, ack)
	}
	if err != nil && !errors.Is(err, core.ErrQuorumUnavailable) {
		writeIngestError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	out := map[string]any{"domain": req.Domain, "id": id}
	if err != nil {
		// Applied and locally durable, but the majority did not confirm
		// in time: accepted, not (yet) quorum-safe.
		out["error"] = err.Error()
		w.WriteHeader(http.StatusAccepted)
	} else {
		w.WriteHeader(http.StatusCreated)
	}
	_ = json.NewEncoder(w).Encode(out)
}

// ingestErrorStatus classifies an InsertAd/DeleteAd failure: a
// durability fault is the server's problem (503 — the ad may even sit
// in memory unlogged; the error text carries its id), admission
// control shedding load is a back-off request (429 with Retry-After —
// nothing was written), a read-only replica is a routing problem (403
// — write to the primary or promote), an ad addressed to a domain this
// shard does not host is a misdirected request (421 — the shard front
// tier routes by the Domain field; landing here means the shard map
// and the request disagree), anything else is the request's problem.
func ingestErrorStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrDurabilityLost):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrReadOnlyReplica):
		return http.StatusForbidden
	case errors.Is(err, core.ErrNotHosted):
		return http.StatusMisdirectedRequest
	default:
		return http.StatusBadRequest
	}
}

// writeIngestError maps an ingest failure onto the wire, adding the
// Retry-After hint on overload responses.
func writeIngestError(w http.ResponseWriter, err error) {
	status := ingestErrorStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	jsonError(w, status, "%v", err)
}

// handleDeleteAd expires an ad:
//
//	DELETE /api/ads/{id}?domain=cars&ack=quorum
//
// Responds 200 with {"domain", "id"} on success, 404 for unknown
// domains or rows already gone, 202 when a quorum-acked delete timed
// out gathering majority confirmation (the delete IS applied and
// locally durable).
func (s *Server) handleDeleteAd(w http.ResponseWriter, r *http.Request) {
	domain := r.URL.Query().Get("domain")
	if domain == "" {
		jsonError(w, http.StatusBadRequest, "missing domain parameter")
		return
	}
	ack, err := core.ParseAckLevel(r.URL.Query().Get("ack"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "invalid ad id %q", r.PathValue("id"))
		return
	}
	err = s.sys.DeleteAdWithAck(domain, sqldb.RowID(id), ack)
	if err != nil && !errors.Is(err, core.ErrQuorumUnavailable) {
		status := http.StatusNotFound
		if s := ingestErrorStatus(err); s != http.StatusBadRequest {
			status = s // durability fault, overload, or read-only replica, not a missing row
		}
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		jsonError(w, status, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	out := map[string]any{"domain": domain, "id": id}
	if err != nil {
		out["error"] = err.Error()
		w.WriteHeader(http.StatusAccepted)
	}
	_ = json.NewEncoder(w).Encode(out)
}

// maxReplPollWait caps how long one GET /api/repl/wal request may be
// held open; followers re-poll, so the cap only bounds a single
// request's lifetime.
const maxReplPollWait = 30 * time.Second

// handleReplSnapshot serves the initial state transfer:
//
//	GET /api/repl/snapshot[?partition=h3/4]
//
// Body: the raw current snapshot blob (the on-disk checkpoint format;
// persist.DecodeSnapshot parses it). A follower restores it wholesale
// and starts polling the WAL from the snapshot's sequence. Only
// durable primaries can serve it; others answer 409.
//
// The partition parameter filters the transfer to one hash slice of
// the key space (rows whose key hashes outside it are dropped; slot
// counts are kept so RowIDs stay cluster-wide) — the bootstrap a
// rebalance target starts from. The WAL stream is never filtered.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	var blob []byte
	var err error
	if ps := r.URL.Query().Get("partition"); ps != "" {
		sl, perr := partition.Parse(ps)
		if perr != nil {
			jsonError(w, http.StatusBadRequest, "invalid partition parameter %q: %v", ps, perr)
			return
		}
		blob, err = s.sys.ReplSnapshotSection(sl)
	} else {
		blob, err = s.sys.ReplSnapshotBlob()
	}
	if err != nil {
		if errors.Is(err, core.ErrNotPrimary) {
			jsonError(w, http.StatusConflict, "%v", err)
			return
		}
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	telemetry.Repl.SnapshotsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(blob)
}

// handleReplWAL ships the operation log:
//
//	GET /api/repl/wal?from=<seq>[&epoch=<term>][&wait=<duration>]
//
// Responds 200 with a stream of length+CRC-framed operations (the WAL
// wire format; persist.OpReader decodes it) whose sequence exceeds
// `from`, plus X-Cqads-Seq (the primary's last committed sequence),
// X-Cqads-Epoch (its leadership term — the follower's stream fence)
// and X-Cqads-Checkpoint-Seq headers. With `wait`, an up-to-date
// follower is long-polled: the request blocks until new operations
// commit or the wait elapses (then 200 with an empty body — a
// heartbeat carrying the current sequence). When compaction has
// discarded the range above `from`, the response is 410 Gone and the
// follower must re-bootstrap from /api/repl/snapshot.
//
// The `epoch` parameter is the log-matching half of epoch fencing: the
// term of the follower's last applied operation. If it disagrees with
// this leader's history at `from` — or the follower's cursor runs past
// this leader's log entirely — the follower holds a suffix written
// under a deposed term; the response is 409 Conflict and the follower
// must re-bootstrap, dropping its diverged suffix.
//
// A request carrying X-Cqads-Node doubles as a durability
// acknowledgement: the cursor a named follower presents is exactly the
// position it has durably applied, which is what quorum-acked writes
// wait on.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "invalid from parameter %q", r.URL.Query().Get("from"))
		return
	}
	hasEpoch := false
	var fromEpoch uint64
	if es := r.URL.Query().Get("epoch"); es != "" {
		fromEpoch, err = strconv.ParseUint(es, 10, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "invalid epoch parameter %q", es)
			return
		}
		hasEpoch = true
	}
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		wait, err = time.ParseDuration(ws)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "invalid wait parameter %q", ws)
			return
		}
		wait = min(wait, maxReplPollWait)
	}
	if node := r.Header.Get("X-Cqads-Node"); node != "" {
		s.sys.NoteFollowerAck(node, from)
	}
	deadline := time.Now().Add(wait)
	for {
		// Watch channel first, then the state check: the other order
		// can miss a commit that lands between them.
		watch, err := s.sys.ReplWatch()
		if err != nil {
			if errors.Is(err, core.ErrNotPrimary) {
				jsonError(w, http.StatusConflict, "%v", err)
				return
			}
			jsonError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		ops, seq, ckpt, err := s.sys.ReplOpsSince(from)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if from < ckpt {
			// Compaction discarded (from, ckpt]; the follower needs a
			// snapshot re-transfer.
			w.Header().Set("X-Cqads-Checkpoint-Seq", strconv.FormatUint(ckpt, 10))
			jsonError(w, http.StatusGone, "log compacted past seq %d (checkpoint is %d); re-bootstrap from /api/repl/snapshot", from, ckpt)
			return
		}
		if hasEpoch {
			// Log matching: the term our history assigns the follower's
			// cursor must equal the term the follower applied it under.
			// A cursor beyond our tip (ok=false with from >= ckpt) is
			// the same divergence — a deposed primary's isolated suffix.
			epochAt, ok := s.sys.ReplEpochAt(from)
			if !ok || epochAt != fromEpoch {
				telemetry.Failover.FencedStreams.Add(1)
				jsonError(w, http.StatusConflict,
					"cursor %d@epoch %d diverges from this leader's history; re-bootstrap from /api/repl/snapshot", from, fromEpoch)
				return
			}
		}
		if len(ops) > 0 || !time.Now().Before(deadline) {
			var buf []byte
			for _, op := range ops {
				if buf, err = persist.AppendFrame(buf, op); err != nil {
					jsonError(w, http.StatusInternalServerError, "%v", err)
					return
				}
			}
			telemetry.Repl.OpsShipped.Add(int64(len(ops)))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("X-Cqads-Seq", strconv.FormatUint(seq, 10))
			w.Header().Set("X-Cqads-Epoch", strconv.FormatUint(s.sys.Epoch(), 10))
			w.Header().Set("X-Cqads-Checkpoint-Seq", strconv.FormatUint(ckpt, 10))
			_, _ = w.Write(buf)
			return
		}
		select {
		case <-watch:
		case <-r.Context().Done():
			return
		case <-time.After(time.Until(deadline)):
		}
	}
}

// handleReplPromote flips a follower writable:
//
//	POST /api/repl/promote
//
// The manual-failover escape hatch: replication stops (when the server
// was wired with the follower's tail loop via Options.Promoter) and
// the System accepts InsertAd/DeleteAd from then on. Responds 200 with
// the resulting role. Promoting an already-writable node is a no-op
// answering its current role — idempotent, so a failover controller
// and an operator issuing the same promote can race safely.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	var err error
	if s.opts.Promoter != nil {
		err = s.opts.Promoter.Promote()
	} else {
		err = s.sys.Promote()
	}
	if err != nil {
		jsonError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"role": s.sys.Status().Replication.Role})
}

// handleReplLeader answers who leads this node's replica set:
//
//	GET /api/repl/leader
//
// Body: {"leader_url", "epoch", "role"}. On a node running a failover
// agent this is the agent's live view — the leader's advertised URL
// (possibly empty between a lease lapse and the next election), the
// current term, and this agent's election role. Without an agent the
// node reports its static storage role and term with no URL: a caller
// that sees a leading role ("primary", "promoted", "standalone")
// knows the node it asked is the write target. Routers poll this
// endpoint to re-point at elected leaders instead of trusting a
// static primary URL.
func (s *Server) handleReplLeader(w http.ResponseWriter, r *http.Request) {
	view := failover.LeaderView{Epoch: s.sys.Epoch(), Role: s.sys.Status().Replication.Role}
	if fo := s.opts.Failover; fo != nil {
		view.LeaderURL, view.Epoch, view.Role = fo.Leader()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(view)
}

// handleReplHeartbeat receives a leader's lease renewal:
//
//	POST /api/repl/heartbeat
//	{"epoch": 3, "leader": "http://a:8080", "seq": 412}
//
// Accepted heartbeats (200) renew this follower's lease and re-point
// its WAL tail; a heartbeat carrying a stale term is rejected (409)
// with the higher term, telling a deposed leader to step down. Nodes
// not running a failover agent answer 404.
func (s *Server) handleReplHeartbeat(w http.ResponseWriter, r *http.Request) {
	fo := s.opts.Failover
	if fo == nil {
		jsonError(w, http.StatusNotFound, "failover is not configured on this node")
		return
	}
	var hb failover.Heartbeat
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	resp := fo.HandleHeartbeat(hb)
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ok {
		w.WriteHeader(http.StatusConflict)
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// handleReplVote receives a candidate's ballot:
//
//	POST /api/repl/vote
//	{"epoch": 4, "candidate": "http://b:8080", "applied_seq": 412, "applied_epoch": 3}
//
// The response grants or denies the vote (always 200; denial is a
// protocol answer, not an HTTP failure) and carries this node's
// current term. Nodes not running a failover agent answer 404.
func (s *Server) handleReplVote(w http.ResponseWriter, r *http.Request) {
	fo := s.opts.Failover
	if fo == nil {
		jsonError(w, http.StatusNotFound, "failover is not configured on this node")
		return
	}
	var req failover.VoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(fo.HandleVote(req))
}

// convertRecord maps a JSON record onto schema-typed sqldb values:
// Type III (quantitative) columns require numbers or numeric strings;
// Type I/II (categorical) columns stringify whatever arrives — a JSON
// number for a categorical column is stored as its decimal string, not
// as sqldb.Number, so it participates in the string-keyed machinery
// (trigram index, TI/WS similarity, dedup) like every other
// categorical value; JSON null stores NULL.
func convertRecord(sch *schema.Schema, record map[string]any) (map[string]sqldb.Value, error) {
	values := make(map[string]sqldb.Value, len(record))
	for col, raw := range record {
		attr, ok := sch.Attr(col)
		if !ok {
			return nil, fmt.Errorf("domain %q has no column %q", sch.Domain, col)
		}
		if raw == nil {
			values[col] = sqldb.Null
			continue
		}
		switch v := raw.(type) {
		case float64:
			if attr.Type == schema.TypeIII {
				values[col] = sqldb.Number(v)
				continue
			}
			values[col] = sqldb.String(strconv.FormatFloat(v, 'f', -1, 64))
		case string:
			if attr.Type == schema.TypeIII {
				n, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					return nil, fmt.Errorf("column %q is quantitative; %q is not a number", col, v)
				}
				values[col] = sqldb.Number(n)
				continue
			}
			values[col] = sqldb.String(v)
		default:
			return nil, fmt.Errorf("column %q: unsupported JSON value %v", col, raw)
		}
	}
	return values, nil
}

// page is the template payload.
type page struct {
	Domains  []string
	Question string
	Domain   string
	Result   *resultView
	Error    string
}

type resultView struct {
	Domain         string
	Interpretation string
	SQL            string
	Plan           string // EXPLAIN output when &explain=1
	ExactCount     int
	PartialCount   int
	ElapsedMS      float64
	Columns        []string
	Rows           []answerRow
}

type answerRow struct {
	Kind    string // "exact" or "partial"
	RankSim string
	Measure string
	Cells   []string
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.render(w, page{Domains: s.sys.Domains()})
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	domain := r.URL.Query().Get("domain")
	p := page{Domains: s.sys.Domains(), Question: q, Domain: domain}
	if q == "" {
		s.render(w, p)
		return
	}
	res, err := s.ask(domain, q)
	if err != nil {
		p.Error = err.Error()
		s.render(w, p)
		return
	}
	p.Result = s.view(res)
	if r.URL.Query().Get("explain") != "" && res.SQL != "" {
		if plan, err := sql.ExplainString(s.sys.DB(), res.SQL); err == nil {
			if s.sys.PlanCached(res.Domain, res.SQL) {
				plan += "  plan cache: hit (compiled plan reused for this question shape)\n"
			} else {
				plan += "  plan cache: miss (plan compiled for this execution)\n"
			}
			p.Result.Plan = plan
		}
	}
	s.render(w, p)
}

// APIAnswer and APIResult are the JSON shape of one answered question,
// shared by GET /api/ask and POST /api/ask/batch (the batch endpoint's
// per-question objects are exactly the single endpoint's body, so
// answers diff byte-identically across primaries and replicas).
// Exported because the shard front tier re-encodes merged scatter
// answers through these very structs — field-order-identical encoding
// is what makes a partitioned domain's answers byte-equal to a
// monolith's.
type APIAnswer struct {
	Exact          bool              `json:"exact"`
	RankSim        float64           `json:"rank_sim"`
	SimilarityUsed string            `json:"similarity_used,omitempty"`
	Record         map[string]string `json:"record"`
}

type APIResult struct {
	Domain         string      `json:"domain"`
	Interpretation string      `json:"interpretation"`
	SQL            string      `json:"sql"`
	ExactCount     int         `json:"exact_count"`
	Answers        []APIAnswer `json:"answers"`
}

// BuildAPIResult shapes a core Result for the JSON API.
func BuildAPIResult(res *core.Result) APIResult {
	out := APIResult{
		Domain:         res.Domain,
		Interpretation: res.Interpretation.String(),
		SQL:            res.SQL,
		ExactCount:     res.ExactCount,
		// Initialized so a no-match query encodes "answers": [] —
		// clients iterating the field shouldn't have to null-check.
		Answers: []APIAnswer{},
	}
	for _, a := range res.Answers {
		rec := make(map[string]string, len(a.Record))
		for k, v := range a.Record {
			rec[k] = v.String()
		}
		out.Answers = append(out.Answers, APIAnswer{
			Exact:          a.Exact,
			RankSim:        a.RankSim,
			SimilarityUsed: a.SimilarityUsed,
			Record:         rec,
		})
	}
	return out
}

// APIResultFromScatter shapes a merged scatter part (MergeScatter over
// every partition's wire part) exactly as BuildAPIResult shapes a
// monolith Result: same struct, same field order, same omissions — so
// the front tier's encoding of a scattered answer is byte-identical to
// the single-node encoding of the same answer.
func APIResultFromScatter(m *core.ScatterPart[map[string]string]) APIResult {
	out := APIResult{
		Domain:         m.Domain,
		Interpretation: m.Interpretation,
		SQL:            m.SQL,
		ExactCount:     m.ExactCount,
		Answers:        []APIAnswer{},
	}
	for _, a := range m.Answers {
		out.Answers = append(out.Answers, APIAnswer{
			Exact:          a.Exact,
			RankSim:        a.RankSim,
			SimilarityUsed: a.SimilarityUsed,
			Record:         a.Record,
		})
	}
	return out
}

func (s *Server) handleAPI(w http.ResponseWriter, r *http.Request) {
	if sl, isScatter, ok := scatterSlice(w, r); isScatter {
		if ok {
			s.handleScatterAsk(w, r, sl)
		}
		return
	}
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		// jsonError, not http.Error: the latter would label the JSON
		// body text/plain.
		jsonError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	res, err := s.ask(r.URL.Query().Get("domain"), q)
	if err != nil {
		// A question addressed to a domain this shard does not host is
		// a misdirected request (421), same as the ingest path — a
		// front tier with a stale shard map can tell it from a plain
		// bad request. Everything else is the request's problem.
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrNotHosted) {
			status = http.StatusMisdirectedRequest
		}
		jsonError(w, status, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(BuildAPIResult(res))
}

// handleAskBatch answers many questions in one call:
//
//	POST /api/ask/batch
//	{"domain": "cars", "questions": ["cheapest honda", ...]}
//
// Response: {"results": [...]} with one entry per question in input
// order — each either the exact object GET /api/ask would return or
// {"error": "..."}. Domain is optional; empty classifies per question.
//
// On a server built with Options.Router, the questions are scattered
// in chunks across the healthy read replicas and gathered; any chunk
// whose replica fails (or lags past the router's threshold) is
// answered locally, so the endpoint never gets worse than local
// execution. Scatter requests carry X-Cqads-Forwarded so a replica
// that is itself fronted by a router answers locally instead of
// re-scattering.
func (s *Server) handleAskBatch(w http.ResponseWriter, r *http.Request) {
	if sl, isScatter, ok := scatterSlice(w, r); isScatter {
		if ok {
			s.handleScatterBatch(w, r, sl)
		}
		return
	}
	var req struct {
		Domain    string   `json:"domain"`
		Questions []string `json:"questions"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if len(req.Questions) == 0 {
		jsonError(w, http.StatusBadRequest, "no questions")
		return
	}
	results := make([]any, len(req.Questions))
	pending := req.Questions
	pendingIdx := make([]int, len(req.Questions))
	for i := range pendingIdx {
		pendingIdx[i] = i
	}
	if rt := s.opts.Router; rt != nil && r.Header.Get(router.ForwardedHeader) == "" {
		scattered := rt.AskBatch(r.Context(), req.Domain, req.Questions)
		pending = pending[:0]
		pendingIdx = pendingIdx[:0]
		for i, item := range scattered {
			if item.Err != nil {
				pending = append(pending, req.Questions[i])
				pendingIdx = append(pendingIdx, i)
				continue
			}
			results[i] = item.JSON
		}
	}
	if len(pending) > 0 {
		for i, br := range s.askBatchLocal(req.Domain, pending) {
			if br.Err != nil {
				results[pendingIdx[i]] = map[string]string{"error": br.Err.Error()}
				continue
			}
			results[pendingIdx[i]] = BuildAPIResult(br.Result)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"results": results})
}

// askBatchLocal runs a batch on this node's System.
func (s *Server) askBatchLocal(domain string, questions []string) []core.BatchResult {
	if domain != "" {
		return s.sys.AskInDomainBatch(domain, questions, 0)
	}
	return s.sys.AskBatch(questions, 0)
}

func (s *Server) ask(domain, q string) (*core.Result, error) {
	if domain != "" {
		return s.sys.AskInDomain(domain, q)
	}
	return s.sys.Ask(q)
}

// view shapes a Result for the HTML table, ordering columns
// Type I → Type II → Type III like the schema.
func (s *Server) view(res *core.Result) *resultView {
	v := &resultView{
		Domain:         res.Domain,
		Interpretation: res.Interpretation.String(),
		SQL:            res.SQL,
		ExactCount:     res.ExactCount,
		PartialCount:   len(res.Answers) - res.ExactCount,
		ElapsedMS:      float64(res.Elapsed.Microseconds()) / 1000,
	}
	tbl, ok := s.sys.DB().TableForDomain(res.Domain)
	if ok {
		for _, a := range tbl.Schema().Attrs {
			v.Columns = append(v.Columns, a.Name)
		}
	} else if len(res.Answers) > 0 {
		for k := range res.Answers[0].Record {
			v.Columns = append(v.Columns, k)
		}
		sort.Strings(v.Columns)
	}
	_ = schema.TypeI // documented ordering comes from the schema itself
	for _, a := range res.Answers {
		row := answerRow{Kind: "partial", Measure: a.SimilarityUsed}
		if a.Exact {
			row.Kind = "exact"
		} else {
			row.RankSim = fmt.Sprintf("%.2f", a.RankSim)
		}
		for _, col := range v.Columns {
			row.Cells = append(row.Cells, a.Record[col].String())
		}
		v.Rows = append(v.Rows, row)
	}
	return v
}

// render buffers the template so a mid-execution failure cannot leak a
// half-written page with a 200 status already on the wire.
func (s *Server) render(w http.ResponseWriter, p page) {
	var buf bytes.Buffer
	if err := s.tpl.Execute(&buf, p); err != nil {
		jsonError(w, http.StatusInternalServerError, "rendering page: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// pageTemplate is the single-page UI.
const pageTemplate = `<!DOCTYPE html>
<html>
<head>
<title>CQAds</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
input[type=text] { width: 32em; padding: .4em; }
table { border-collapse: collapse; margin-top: 1em; }
th, td { border: 1px solid #bbb; padding: .3em .6em; text-align: left; }
tr.exact { background: #e8f5e9; }
tr.partial { background: #fff8e1; }
.meta { color: #666; font-size: .9em; margin: .4em 0; }
code { background: #f3f3f3; padding: .1em .3em; }
</style>
</head>
<body>
<h1>CQAds — ads question answering</h1>
<form action="/ask" method="get">
  <input type="text" name="q" value="{{.Question}}"
         placeholder="Find Honda Accord blue less than 15,000 dollars">
  <select name="domain">
    <option value="">auto-classify</option>
    {{range .Domains}}<option value="{{.}}" {{if eq . $.Domain}}selected{{end}}>{{.}}</option>{{end}}
  </select>
  <button type="submit">Ask</button>
</form>
{{with .Error}}<p style="color:#b00">{{.}}</p>{{end}}
{{with .Result}}
<div class="meta">domain <b>{{.Domain}}</b> ·
  {{.ExactCount}} exact + {{.PartialCount}} partial ·
  {{printf "%.2f" .ElapsedMS}} ms</div>
<div class="meta">interpretation: <code>{{.Interpretation}}</code></div>
<div class="meta">SQL: <code>{{.SQL}}</code></div>
{{with .Plan}}<pre class="meta">{{.}}</pre>{{end}}
<table>
<tr><th>#</th><th>match</th><th>Rank_Sim</th><th>measure</th>
{{range .Columns}}<th>{{.}}</th>{{end}}</tr>
{{range $i, $r := .Rows}}
<tr class="{{$r.Kind}}"><td>{{$i}}</td><td>{{$r.Kind}}</td>
<td>{{$r.RankSim}}</td><td>{{$r.Measure}}</td>
{{range $r.Cells}}<td>{{.}}</td>{{end}}</tr>
{{end}}
</table>
{{end}}
</body>
</html>`
