// Package webui provides the HTML front end the paper describes in
// Sec. 4.5: "The answers are displayed on an HTML interface in a
// tabular manner." It wraps a core.System in an http.Handler with a
// question form, a tabular answer view that distinguishes exact from
// ranked partial matches (showing Rank_Sim and the similarity measure
// used, as in Table 2), and a JSON API for programmatic use.
package webui

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/sql"
	"repro/internal/sqldb"
)

// Server is the HTTP front end over a running CQAds instance.
type Server struct {
	sys *core.System
	mux *http.ServeMux
	tpl *template.Template
}

// NewServer wraps sys. The handler serves:
//
//	GET /                   the question form
//	GET /ask?q=...          HTML answer table (optional &domain=...)
//	GET /api/ask?q=...      JSON answers
//	GET /api/status         corpus versions + persistence state
//	POST /api/ads           ingest one ad: {"domain": ..., "record": {...}}
//	DELETE /api/ads/{id}    expire an ad (?domain=... required)
//
// The ingestion endpoints mutate the live store: an ad POSTed here is
// returned by /api/ask seconds (in fact, immediately) later, and a
// DELETEd ad stops appearing at once.
func NewServer(sys *core.System) *Server {
	s := &Server{
		sys: sys,
		mux: http.NewServeMux(),
		tpl: template.Must(template.New("page").Parse(pageTemplate)),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/ask", s.handleAsk)
	s.mux.HandleFunc("/api/ask", s.handleAPI)
	s.mux.HandleFunc("/api/suggest", s.handleSuggest)
	s.mux.HandleFunc("GET /api/status", s.handleStatus)
	s.mux.HandleFunc("POST /api/ads", s.handleInsertAd)
	s.mux.HandleFunc("DELETE /api/ads/{id}", s.handleDeleteAd)
	return s
}

// handleSuggest serves keyword autocompletion from the domain trie:
// GET /api/suggest?domain=cars&prefix=ho → ["honda", ...].
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	domain := r.URL.Query().Get("domain")
	prefix := strings.ToLower(strings.TrimSpace(r.URL.Query().Get("prefix")))
	w.Header().Set("Content-Type", "application/json")
	tagger := s.sys.Tagger(domain)
	if tagger == nil || prefix == "" {
		_, _ = w.Write([]byte("[]"))
		return
	}
	suggestions := tagger.Trie.Suggest(prefix, 10)
	if suggestions == nil {
		suggestions = []string{}
	}
	_ = json.NewEncoder(w).Encode(suggestions)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// jsonError writes a JSON error payload with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleStatus reports the live corpus and durability state:
//
//	GET /api/status
//
// Per domain: live ad count, allocated RowID slots, and the table's
// mutation version. The persistence block reports whether the server
// is durable and, when it is, the last logged operation sequence, the
// sequence the on-disk snapshot covers, the current WAL size, and the
// wall time of the last checkpoint — the numbers an operator needs to
// judge replay distance after a crash.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Status()
	type domainJSON struct {
		Domain  string `json:"domain"`
		Live    int    `json:"live"`
		Slots   int    `json:"slots"`
		Version uint64 `json:"version"`
	}
	type persistenceJSON struct {
		Enabled        bool   `json:"enabled"`
		Dir            string `json:"dir,omitempty"`
		Seq            uint64 `json:"seq,omitempty"`
		CheckpointSeq  uint64 `json:"checkpoint_seq,omitempty"`
		WALBytes       int64  `json:"wal_bytes,omitempty"`
		LastCheckpoint string `json:"last_checkpoint,omitempty"`
		Failed         bool   `json:"failed,omitempty"`
	}
	out := struct {
		Domains     []domainJSON    `json:"domains"`
		Persistence persistenceJSON `json:"persistence"`
	}{Domains: []domainJSON{}}
	for _, d := range st.Domains {
		out.Domains = append(out.Domains, domainJSON{
			Domain: d.Domain, Live: d.Live, Slots: d.Slots, Version: d.Version,
		})
	}
	out.Persistence = persistenceJSON{
		Enabled:       st.Persistence.Enabled,
		Dir:           st.Persistence.Dir,
		Seq:           st.Persistence.Seq,
		CheckpointSeq: st.Persistence.CheckpointSeq,
		WALBytes:      st.Persistence.WALBytes,
		Failed:        st.Persistence.Failed,
	}
	if !st.Persistence.LastCheckpoint.IsZero() {
		out.Persistence.LastCheckpoint = st.Persistence.LastCheckpoint.Format(time.RFC3339Nano)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleInsertAd ingests one ad into a live domain:
//
//	POST /api/ads
//	{"domain": "cars", "record": {"make": "honda", "price": 12000}}
//
// Values are converted against the domain schema: Type III columns
// take JSON numbers (or numeric strings), all others take strings.
// Missing columns store NULL. Responds 201 with {"domain", "id"}.
func (s *Server) handleInsertAd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Domain string         `json:"domain"`
		Record map[string]any `json:"record"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	tbl, ok := s.sys.DB().TableForDomain(req.Domain)
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown domain %q", req.Domain)
		return
	}
	values, err := convertRecord(tbl.Schema(), req.Record)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := s.sys.InsertAd(req.Domain, values)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(map[string]any{"domain": req.Domain, "id": id})
}

// handleDeleteAd expires an ad:
//
//	DELETE /api/ads/{id}?domain=cars
//
// Responds 200 with {"domain", "id"} on success, 404 for unknown
// domains or rows already gone.
func (s *Server) handleDeleteAd(w http.ResponseWriter, r *http.Request) {
	domain := r.URL.Query().Get("domain")
	if domain == "" {
		jsonError(w, http.StatusBadRequest, "missing domain parameter")
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "invalid ad id %q", r.PathValue("id"))
		return
	}
	if err := s.sys.DeleteAd(domain, sqldb.RowID(id)); err != nil {
		jsonError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"domain": domain, "id": id})
}

// convertRecord maps a JSON record onto schema-typed sqldb values:
// Type III (quantitative) columns require numbers or numeric strings;
// Type I/II (categorical) columns stringify whatever arrives — a JSON
// number for a categorical column is stored as its decimal string, not
// as sqldb.Number, so it participates in the string-keyed machinery
// (trigram index, TI/WS similarity, dedup) like every other
// categorical value; JSON null stores NULL.
func convertRecord(sch *schema.Schema, record map[string]any) (map[string]sqldb.Value, error) {
	values := make(map[string]sqldb.Value, len(record))
	for col, raw := range record {
		attr, ok := sch.Attr(col)
		if !ok {
			return nil, fmt.Errorf("domain %q has no column %q", sch.Domain, col)
		}
		if raw == nil {
			values[col] = sqldb.Null
			continue
		}
		switch v := raw.(type) {
		case float64:
			if attr.Type == schema.TypeIII {
				values[col] = sqldb.Number(v)
				continue
			}
			values[col] = sqldb.String(strconv.FormatFloat(v, 'f', -1, 64))
		case string:
			if attr.Type == schema.TypeIII {
				n, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					return nil, fmt.Errorf("column %q is quantitative; %q is not a number", col, v)
				}
				values[col] = sqldb.Number(n)
				continue
			}
			values[col] = sqldb.String(v)
		default:
			return nil, fmt.Errorf("column %q: unsupported JSON value %v", col, raw)
		}
	}
	return values, nil
}

// page is the template payload.
type page struct {
	Domains  []string
	Question string
	Domain   string
	Result   *resultView
	Error    string
}

type resultView struct {
	Domain         string
	Interpretation string
	SQL            string
	Plan           string // EXPLAIN output when &explain=1
	ExactCount     int
	PartialCount   int
	ElapsedMS      float64
	Columns        []string
	Rows           []answerRow
}

type answerRow struct {
	Kind    string // "exact" or "partial"
	RankSim string
	Measure string
	Cells   []string
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.render(w, page{Domains: s.sys.Domains()})
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	domain := r.URL.Query().Get("domain")
	p := page{Domains: s.sys.Domains(), Question: q, Domain: domain}
	if q == "" {
		s.render(w, p)
		return
	}
	res, err := s.ask(domain, q)
	if err != nil {
		p.Error = err.Error()
		s.render(w, p)
		return
	}
	p.Result = s.view(res)
	if r.URL.Query().Get("explain") != "" && res.SQL != "" {
		if plan, err := sql.ExplainString(s.sys.DB(), res.SQL); err == nil {
			p.Result.Plan = plan
		}
	}
	s.render(w, p)
}

func (s *Server) handleAPI(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		// jsonError, not http.Error: the latter would label the JSON
		// body text/plain.
		jsonError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	res, err := s.ask(r.URL.Query().Get("domain"), q)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type apiAnswer struct {
		Exact          bool              `json:"exact"`
		RankSim        float64           `json:"rank_sim"`
		SimilarityUsed string            `json:"similarity_used,omitempty"`
		Record         map[string]string `json:"record"`
	}
	out := struct {
		Domain         string      `json:"domain"`
		Interpretation string      `json:"interpretation"`
		SQL            string      `json:"sql"`
		ExactCount     int         `json:"exact_count"`
		Answers        []apiAnswer `json:"answers"`
	}{
		Domain:         res.Domain,
		Interpretation: res.Interpretation.String(),
		SQL:            res.SQL,
		ExactCount:     res.ExactCount,
		// Initialized so a no-match query encodes "answers": [] —
		// clients iterating the field shouldn't have to null-check.
		Answers: []apiAnswer{},
	}
	for _, a := range res.Answers {
		rec := make(map[string]string, len(a.Record))
		for k, v := range a.Record {
			rec[k] = v.String()
		}
		out.Answers = append(out.Answers, apiAnswer{
			Exact:          a.Exact,
			RankSim:        a.RankSim,
			SimilarityUsed: a.SimilarityUsed,
			Record:         rec,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (s *Server) ask(domain, q string) (*core.Result, error) {
	if domain != "" {
		return s.sys.AskInDomain(domain, q)
	}
	return s.sys.Ask(q)
}

// view shapes a Result for the HTML table, ordering columns
// Type I → Type II → Type III like the schema.
func (s *Server) view(res *core.Result) *resultView {
	v := &resultView{
		Domain:         res.Domain,
		Interpretation: res.Interpretation.String(),
		SQL:            res.SQL,
		ExactCount:     res.ExactCount,
		PartialCount:   len(res.Answers) - res.ExactCount,
		ElapsedMS:      float64(res.Elapsed.Microseconds()) / 1000,
	}
	tbl, ok := s.sys.DB().TableForDomain(res.Domain)
	if ok {
		for _, a := range tbl.Schema().Attrs {
			v.Columns = append(v.Columns, a.Name)
		}
	} else if len(res.Answers) > 0 {
		for k := range res.Answers[0].Record {
			v.Columns = append(v.Columns, k)
		}
		sort.Strings(v.Columns)
	}
	_ = schema.TypeI // documented ordering comes from the schema itself
	for _, a := range res.Answers {
		row := answerRow{Kind: "partial", Measure: a.SimilarityUsed}
		if a.Exact {
			row.Kind = "exact"
		} else {
			row.RankSim = fmt.Sprintf("%.2f", a.RankSim)
		}
		for _, col := range v.Columns {
			row.Cells = append(row.Cells, a.Record[col].String())
		}
		v.Rows = append(v.Rows, row)
	}
	return v
}

func (s *Server) render(w http.ResponseWriter, p page) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := s.tpl.Execute(w, p); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// pageTemplate is the single-page UI.
const pageTemplate = `<!DOCTYPE html>
<html>
<head>
<title>CQAds</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
input[type=text] { width: 32em; padding: .4em; }
table { border-collapse: collapse; margin-top: 1em; }
th, td { border: 1px solid #bbb; padding: .3em .6em; text-align: left; }
tr.exact { background: #e8f5e9; }
tr.partial { background: #fff8e1; }
.meta { color: #666; font-size: .9em; margin: .4em 0; }
code { background: #f3f3f3; padding: .1em .3em; }
</style>
</head>
<body>
<h1>CQAds — ads question answering</h1>
<form action="/ask" method="get">
  <input type="text" name="q" value="{{.Question}}"
         placeholder="Find Honda Accord blue less than 15,000 dollars">
  <select name="domain">
    <option value="">auto-classify</option>
    {{range .Domains}}<option value="{{.}}" {{if eq . $.Domain}}selected{{end}}>{{.}}</option>{{end}}
  </select>
  <button type="submit">Ask</button>
</form>
{{with .Error}}<p style="color:#b00">{{.}}</p>{{end}}
{{with .Result}}
<div class="meta">domain <b>{{.Domain}}</b> ·
  {{.ExactCount}} exact + {{.PartialCount}} partial ·
  {{printf "%.2f" .ElapsedMS}} ms</div>
<div class="meta">interpretation: <code>{{.Interpretation}}</code></div>
<div class="meta">SQL: <code>{{.SQL}}</code></div>
{{with .Plan}}<pre class="meta">{{.}}</pre>{{end}}
<table>
<tr><th>#</th><th>match</th><th>Rank_Sim</th><th>measure</th>
{{range .Columns}}<th>{{.}}</th>{{end}}</tr>
{{range $i, $r := .Rows}}
<tr class="{{$r.Kind}}"><td>{{$i}}</td><td>{{$r.Kind}}</td>
<td>{{$r.RankSim}}</td><td>{{$r.Measure}}</td>
{{range $r.Cells}}<td>{{.}}</td>{{end}}</tr>
{{end}}
</table>
{{end}}
</body>
</html>`
