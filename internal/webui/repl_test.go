package webui

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"

	"repro/cqads"
	"repro/internal/adsgen"
	"repro/internal/persist"
	"repro/internal/replica/router"
	"repro/internal/schema"
)

// primaryServer builds a durable primary over the bundled environment.
func primaryServer(t *testing.T) (*cqads.System, *Server) {
	t.Helper()
	sys, err := cqads.Open(cqads.Options{Seed: 11, AdsPerDomain: 60, DataDir: t.TempDir(), CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys, NewServer(sys)
}

func do(t *testing.T, srv *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// TestHealthzStates: serving on a healthy node, write-failed once the
// durability latch is set; the body carries role and cursors.
func TestHealthzStates(t *testing.T) {
	_, srv := primaryServer(t)
	rec := do(t, srv, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var body struct {
		State      string `json:"state"`
		Role       string `json:"role"`
		AppliedSeq uint64 `json:"applied_seq"`
		LagOps     uint64 `json:"lag_ops"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.State != "serving" || body.Role != "primary" {
		t.Fatalf("healthz body = %+v", body)
	}

	// In-memory server: standalone but serving.
	rec = do(t, server(t), http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("standalone healthz = %d", rec.Code)
	}
}

// TestReplProtocolEndToEnd drives the full wire protocol through the
// handlers: snapshot transfer, framed WAL fetch, heartbeat, and the
// 410 compaction signal.
func TestReplProtocolEndToEnd(t *testing.T) {
	sys, srv := primaryServer(t)

	// Snapshot transfer decodes and carries the checkpoint seq.
	rec := do(t, srv, http.MethodGet, "/api/repl/snapshot", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot = %d: %s", rec.Code, rec.Body.String())
	}
	snap, err := persist.DecodeSnapshot(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	baseSeq := snap.Seq

	// Ingest, then fetch the stream from the snapshot's cursor.
	gen := adsgen.NewGenerator(77)
	for _, ad := range gen.Generate(schema.Cars(), 4) {
		if _, err := sys.InsertAd("cars", ad); err != nil {
			t.Fatal(err)
		}
	}
	rec = do(t, srv, http.MethodGet, fmt.Sprintf("/api/repl/wal?from=%d", baseSeq), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("wal = %d: %s", rec.Code, rec.Body.String())
	}
	seqHdr, err := strconv.ParseUint(rec.Header().Get("X-Cqads-Seq"), 10, 64)
	if err != nil || seqHdr != baseSeq+4 {
		t.Fatalf("X-Cqads-Seq = %q, want %d", rec.Header().Get("X-Cqads-Seq"), baseSeq+4)
	}
	dec := persist.NewOpReader(bytes.NewReader(rec.Body.Bytes()))
	var got []persist.Op
	for {
		op, err := dec.Next()
		if err != nil {
			break
		}
		got = append(got, op)
	}
	if len(got) != 4 || got[0].Seq != baseSeq+1 || got[3].Seq != baseSeq+4 {
		t.Fatalf("decoded %d ops, first/last %d/%d; want 4 ops %d..%d",
			len(got), got[0].Seq, got[len(got)-1].Seq, baseSeq+1, baseSeq+4)
	}

	// Caught-up cursor with no wait: an empty 200 heartbeat.
	rec = do(t, srv, http.MethodGet, fmt.Sprintf("/api/repl/wal?from=%d", baseSeq+4), nil)
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Fatalf("heartbeat = %d with %d bytes", rec.Code, rec.Body.Len())
	}

	// Compaction discards the shipped range: a stale cursor gets 410.
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rec = do(t, srv, http.MethodGet, fmt.Sprintf("/api/repl/wal?from=%d", baseSeq), nil)
	if rec.Code != http.StatusGone {
		t.Fatalf("stale cursor = %d, want 410", rec.Code)
	}

	// Malformed parameters are 400s.
	if rec := do(t, srv, http.MethodGet, "/api/repl/wal?from=nope", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad from = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodGet, "/api/repl/wal?from=0&wait=nope", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad wait = %d", rec.Code)
	}
}

// TestReplEndpointsRequirePrimary: an in-memory server answers 409 to
// the shipping endpoints, while promote — idempotent since automatic
// failover arrived, so a controller and an operator can race — answers
// 200 with the node's current (already writable) role.
func TestReplEndpointsRequirePrimary(t *testing.T) {
	srv := server(t)
	if rec := do(t, srv, http.MethodGet, "/api/repl/snapshot", nil); rec.Code != http.StatusConflict {
		t.Fatalf("snapshot on standalone = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodGet, "/api/repl/wal?from=0", nil); rec.Code != http.StatusConflict {
		t.Fatalf("wal on standalone = %d", rec.Code)
	}
	rec := do(t, srv, http.MethodPost, "/api/repl/promote", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("promote on standalone = %d, want idempotent 200", rec.Code)
	}
	var resp struct {
		Role string `json:"role"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Role != "standalone" {
		t.Fatalf("promote on standalone reported role %q", resp.Role)
	}
}

// TestFollowerWebUIAndPromote: a follower served by webui reports its
// role, rejects ingestion over HTTP, and flips writable via
// POST /api/repl/promote.
func TestFollowerWebUIAndPromote(t *testing.T) {
	_, psrv := primaryServer(t)
	rec := do(t, psrv, http.MethodGet, "/api/repl/snapshot", nil)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	fsys, err := cqads.OpenFollower(cqads.Options{Seed: 11, AdsPerDomain: 60}, rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	fsrv := NewServer(fsys)

	rec = do(t, fsrv, http.MethodGet, "/healthz", nil)
	var hz struct {
		State string `json:"state"`
		Role  string `json:"role"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.State != "serving" || hz.Role != "follower" {
		t.Fatalf("follower healthz = %+v", hz)
	}

	// HTTP ingestion is refused while read-only — 403, not 400: the
	// request is fine, the node is the wrong one to write to.
	ad := `{"domain":"cars","record":{"make":"honda"}}`
	if rec := do(t, fsrv, http.MethodPost, "/api/ads", []byte(ad)); rec.Code != http.StatusForbidden {
		t.Fatalf("POST /api/ads on follower = %d, want 403", rec.Code)
	}
	if rec := do(t, fsrv, http.MethodDelete, "/api/ads/1?domain=cars", nil); rec.Code != http.StatusForbidden {
		t.Fatalf("DELETE /api/ads on follower = %d, want 403", rec.Code)
	}

	// Promote over HTTP, then ingestion works.
	rec = do(t, fsrv, http.MethodPost, "/api/repl/promote", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("promote = %d: %s", rec.Code, rec.Body.String())
	}
	var pr struct {
		Role string `json:"role"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Role != "promoted" {
		t.Fatalf("promote role = %q", pr.Role)
	}
	if rec := do(t, fsrv, http.MethodPost, "/api/ads", []byte(ad)); rec.Code != http.StatusCreated {
		t.Fatalf("POST /api/ads after promote = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestAskBatchLocal: the batch endpoint's per-question objects are
// byte-identical to the single /api/ask bodies, errors are per
// question, and validation errors are JSON.
func TestAskBatchLocal(t *testing.T) {
	_, srv := primaryServer(t)
	qs := []string{"cheapest honda", "blue car"}
	body, _ := json.Marshal(map[string]any{"domain": "cars", "questions": qs})
	rec := do(t, srv, http.MethodPost, "/api/ask/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(qs) {
		t.Fatalf("%d results for %d questions", len(out.Results), len(qs))
	}
	for i, q := range qs {
		single := do(t, srv, http.MethodGet, "/api/ask?domain=cars&q="+url.QueryEscape(q), nil)
		var want, got any
		if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(out.Results[i], &got); err != nil {
			t.Fatal(err)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if !bytes.Equal(wb, gb) {
			t.Fatalf("%q: batch answer differs from single:\nbatch  %s\nsingle %s", q, gb, wb)
		}
	}

	// Per-question errors: an unknown domain fails each question
	// independently, not the request.
	body, _ = json.Marshal(map[string]any{"domain": "starships", "questions": qs})
	rec = do(t, srv, http.MethodPost, "/api/ask/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch with bad domain = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for _, raw := range out.Results {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Fatalf("expected per-question error, got %s", raw)
		}
	}
	if rec := do(t, srv, http.MethodPost, "/api/ask/batch", []byte(`{"questions":[]}`)); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d", rec.Code)
	}
}

// TestAskBatchScattersAcrossReplica: a primary fronted by a router
// scatters to a live follower and the gathered answers are identical
// to local execution; with the follower down, the local fallback
// produces the same bytes.
func TestAskBatchScattersAcrossReplica(t *testing.T) {
	sys, psrv := primaryServer(t)

	// Follower over HTTP.
	rec := do(t, psrv, http.MethodGet, "/api/repl/snapshot", nil)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	fsys, err := cqads.OpenFollower(cqads.Options{Seed: 11, AdsPerDomain: 60}, rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	fhttp := httptest.NewServer(NewServer(fsys))
	defer fhttp.Close()

	rt := router.New(router.Config{Replicas: []string{fhttp.URL}})
	defer rt.Close()
	front := NewServerWith(sys, Options{Router: rt})

	qs := []string{"cheapest honda", "blue car", "gold necklace diamond"}
	body, _ := json.Marshal(map[string]any{"questions": qs})
	scattered := do(t, front, http.MethodPost, "/api/ask/batch", body)
	if scattered.Code != http.StatusOK {
		t.Fatalf("scattered batch = %d: %s", scattered.Code, scattered.Body.String())
	}
	local := do(t, NewServer(sys), http.MethodPost, "/api/ask/batch", body)
	if !bytes.Equal(scattered.Body.Bytes(), local.Body.Bytes()) {
		t.Fatalf("scattered answers differ from local:\nscattered %s\nlocal     %s",
			scattered.Body.String(), local.Body.String())
	}

	// Kill the follower: the endpoint falls back to local execution
	// and still returns identical bytes.
	fhttp.Close()
	fallback := do(t, front, http.MethodPost, "/api/ask/batch", body)
	if fallback.Code != http.StatusOK {
		t.Fatalf("fallback batch = %d", fallback.Code)
	}
	if !bytes.Equal(fallback.Body.Bytes(), local.Body.Bytes()) {
		t.Fatal("fallback answers differ from local")
	}
}
