package webui

// HTTP-surface tests for the failover additions: ack levels on ingest,
// admission-control shedding, the election endpoints, WAL log
// matching, and the epoch/quorum fields in status and healthz.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/cqads"
	"repro/internal/core"
	"repro/internal/failover"
)

// quorumServer builds a durable node configured as one member of a
// 3-node replica set (so AckQuorum waits for one follower ack) with a
// short ack timeout.
func quorumServer(t *testing.T, ackTimeout time.Duration) (*cqads.System, *Server) {
	t.Helper()
	sys, err := cqads.Open(cqads.Options{
		Seed: 11, AdsPerDomain: 60, DataDir: t.TempDir(), CompactBytes: -1,
		ReplicaSet: 3, AckTimeout: ackTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys, NewServer(sys)
}

const carBody = `{"domain":"cars","record":{"make":"lexus","model":"es350","color":"gold","price":31337}}`

// TestAckLevels: ack=local (and the default) confirm 201 immediately;
// ack=quorum on a node with no reachable followers answers 202 with
// the assigned id and the timeout in "error" (the write is locally
// durable — retrying would duplicate it); a bogus level is a 400.
func TestAckLevels(t *testing.T) {
	_, srv := quorumServer(t, 30*time.Millisecond)

	if rec := doJSON(t, srv, http.MethodPost, "/api/ads?ack=local", carBody); rec.Code != http.StatusCreated {
		t.Fatalf("ack=local = %d: %s", rec.Code, rec.Body.String())
	}
	rec := doJSON(t, srv, http.MethodPost, "/api/ads?ack=quorum", carBody)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ack=quorum with no followers = %d, want 202: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		ID    int    `json:"id"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID == 0 || resp.Error == "" {
		t.Fatalf("202 body missing id or error: %s", rec.Body.String())
	}
	if rec := doJSON(t, srv, http.MethodPost, "/api/ads?ack=paxos", carBody); rec.Code != http.StatusBadRequest {
		t.Fatalf("ack=paxos = %d, want 400", rec.Code)
	}

	// The 202'd ad is applied: deleting it at ack=quorum also times out
	// into a 202, not a 404.
	rec = doJSON(t, srv, http.MethodDelete, "/api/ads/"+strconv.Itoa(resp.ID)+"?domain=cars&ack=quorum", "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("quorum delete = %d, want 202: %s", rec.Code, rec.Body.String())
	}
}

// TestQuorumAckUnblocksOnFollowerPoll: a follower's WAL poll carries
// its durable cursor (X-Cqads-Node + from), which is exactly the ack a
// pending quorum write waits for.
func TestQuorumAckUnblocksOnFollowerPoll(t *testing.T) {
	sys, srv := quorumServer(t, 5*time.Second)

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- doJSON(t, srv, http.MethodPost, "/api/ads?ack=quorum", carBody)
	}()

	// Wait until the write is pending, then ack it the way a follower
	// does: a WAL poll whose cursor covers it.
	deadline := time.Now().Add(10 * time.Second)
	for sys.Status().Admission.PendingQuorum == 0 {
		if time.Now().After(deadline) {
			t.Fatal("quorum write never went pending")
		}
		time.Sleep(2 * time.Millisecond)
	}
	seq := sys.Status().Persistence.Seq
	req := httptest.NewRequest(http.MethodGet, "/api/repl/wal?from="+strconv.FormatUint(seq, 10), nil)
	req.Header.Set("X-Cqads-Node", "http://follower-a")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("acking WAL poll = %d: %s", rec.Code, rec.Body.String())
	}

	select {
	case rec := <-done:
		if rec.Code != http.StatusCreated {
			t.Fatalf("acked quorum write = %d, want 201: %s", rec.Code, rec.Body.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("quorum write still blocked after the follower ack")
	}
}

// TestAdmissionControlSheds: a WAL backlog past the threshold turns
// ingest away with 429 + Retry-After while reads keep working.
func TestAdmissionControlSheds(t *testing.T) {
	sys, err := cqads.Open(cqads.Options{
		Seed: 11, AdsPerDomain: 60, DataDir: t.TempDir(), CompactBytes: -1,
		MaxWALBytes: 1, // every append overflows the backlog
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := NewServer(sys)

	if rec := doJSON(t, srv, http.MethodPost, "/api/ads", carBody); rec.Code != http.StatusCreated {
		t.Fatalf("first insert = %d: %s", rec.Code, rec.Body.String())
	}
	rec := doJSON(t, srv, http.MethodPost, "/api/ads", carBody)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("insert over backlog = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if rec := doJSON(t, srv, http.MethodGet, "/api/ask?domain=cars&q=gold+lexus", ""); rec.Code != http.StatusOK {
		t.Fatalf("read during overload = %d", rec.Code)
	}
	// The thresholds are visible for operators.
	var st struct {
		Admission struct {
			MaxWALBytes int64 `json:"max_wal_bytes"`
		} `json:"admission"`
	}
	rec = doJSON(t, srv, http.MethodGet, "/api/status", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.MaxWALBytes != 1 {
		t.Fatalf("status admission.max_wal_bytes = %d", st.Admission.MaxWALBytes)
	}
}

// stubAgent is a canned Failover implementation for handler tests.
type stubAgent struct {
	hb   failover.HeartbeatResponse
	vote failover.VoteResponse
}

func (s *stubAgent) Leader() (string, uint64, string) {
	return "http://leader:1", 7, failover.RoleFollower
}
func (s *stubAgent) HandleHeartbeat(failover.Heartbeat) failover.HeartbeatResponse { return s.hb }
func (s *stubAgent) HandleVote(failover.VoteRequest) failover.VoteResponse         { return s.vote }

// TestElectionEndpoints: without an agent, the leader view falls back
// to the storage role and heartbeat/vote answer 404; with one, the
// agent's verdicts map onto the wire (rejected heartbeat → 409).
func TestElectionEndpoints(t *testing.T) {
	_, plain := primaryServer(t)
	rec := do(t, plain, http.MethodGet, "/api/repl/leader", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("leader on agentless node = %d", rec.Code)
	}
	var view failover.LeaderView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Role != core.RolePrimary || view.LeaderURL != "" {
		t.Fatalf("agentless leader view = %+v", view)
	}
	if rec := do(t, plain, http.MethodPost, "/api/repl/heartbeat", []byte(`{"epoch":1}`)); rec.Code != http.StatusNotFound {
		t.Fatalf("heartbeat without agent = %d, want 404", rec.Code)
	}
	if rec := do(t, plain, http.MethodPost, "/api/repl/vote", []byte(`{"epoch":1}`)); rec.Code != http.StatusNotFound {
		t.Fatalf("vote without agent = %d, want 404", rec.Code)
	}

	sys, err := cqads.Open(cqads.Options{Seed: 11, AdsPerDomain: 60})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	stub := &stubAgent{
		hb:   failover.HeartbeatResponse{Ok: false, Epoch: 9},
		vote: failover.VoteResponse{Granted: true, Epoch: 3},
	}
	agentful := NewServerWith(sys, Options{Failover: stub})

	rec = do(t, agentful, http.MethodGet, "/api/repl/leader", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.LeaderURL != "http://leader:1" || view.Epoch != 7 || view.Role != failover.RoleFollower {
		t.Fatalf("agent leader view = %+v", view)
	}
	rec = do(t, agentful, http.MethodPost, "/api/repl/heartbeat", []byte(`{"epoch":1,"leader":"http://x"}`))
	if rec.Code != http.StatusConflict {
		t.Fatalf("rejected heartbeat = %d, want 409", rec.Code)
	}
	var hbResp failover.HeartbeatResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hbResp); err != nil {
		t.Fatal(err)
	}
	if hbResp.Ok || hbResp.Epoch != 9 {
		t.Fatalf("heartbeat body = %+v", hbResp)
	}
	rec = do(t, agentful, http.MethodPost, "/api/repl/vote", []byte(`{"epoch":3,"candidate":"http://x"}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("vote = %d", rec.Code)
	}
	var vResp failover.VoteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &vResp); err != nil {
		t.Fatal(err)
	}
	if !vResp.Granted || vResp.Epoch != 3 {
		t.Fatalf("vote body = %+v", vResp)
	}
	if rec := do(t, agentful, http.MethodPost, "/api/repl/heartbeat", []byte(`not json`)); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed heartbeat = %d", rec.Code)
	}
}

// TestWALLogMatching: a cursor presented with the wrong term is
// refused with 409 (diverged log), the right term streams normally and
// carries the leader's current epoch in X-Cqads-Epoch.
func TestWALLogMatching(t *testing.T) {
	sys, srv := primaryServer(t)
	postOneAd(t, srv) // seq 1 at epoch 0
	sys.NoteEpoch(5)
	postOneAd(t, srv) // seq 2 at epoch 5

	// Correct split: seq 1 was logged under epoch 0, seq 2 under 5.
	if rec := do(t, srv, http.MethodGet, "/api/repl/wal?from=1&epoch=0", nil); rec.Code != http.StatusOK {
		t.Fatalf("matching cursor = %d: %s", rec.Code, rec.Body.String())
	}
	rec := do(t, srv, http.MethodGet, "/api/repl/wal?from=2&epoch=5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("matching tip cursor = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cqads-Epoch"); got != "5" {
		t.Fatalf("X-Cqads-Epoch = %q, want 5", got)
	}

	// A deposed primary's isolated suffix: term disagrees → 409.
	if rec := do(t, srv, http.MethodGet, "/api/repl/wal?from=1&epoch=3", nil); rec.Code != http.StatusConflict {
		t.Fatalf("diverged cursor = %d, want 409: %s", rec.Code, rec.Body.String())
	}
	// A cursor beyond the tip is divergence too.
	if rec := do(t, srv, http.MethodGet, "/api/repl/wal?from=99&epoch=5", nil); rec.Code != http.StatusConflict {
		t.Fatalf("cursor past tip = %d, want 409: %s", rec.Code, rec.Body.String())
	}
	// No epoch parameter — a pre-failover follower — skips matching.
	if rec := do(t, srv, http.MethodGet, "/api/repl/wal?from=1", nil); rec.Code != http.StatusOK {
		t.Fatalf("epochless cursor = %d: %s", rec.Code, rec.Body.String())
	}
}

func postOneAd(t *testing.T, srv *Server) {
	t.Helper()
	if rec := doJSON(t, srv, http.MethodPost, "/api/ads", carBody); rec.Code != http.StatusCreated {
		t.Fatalf("insert = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestStatusCarriesEpochAndQuorum: the replication block reports the
// term and quorum size, healthz the term.
func TestStatusCarriesEpochAndQuorum(t *testing.T) {
	sys, srv := quorumServer(t, time.Second)
	sys.NoteEpoch(4)

	var st struct {
		Replication struct {
			Epoch      uint64 `json:"epoch"`
			QuorumSize int    `json:"quorum_size"`
		} `json:"replication"`
	}
	rec := do(t, srv, http.MethodGet, "/api/status", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Replication.Epoch != 4 || st.Replication.QuorumSize != 2 {
		t.Fatalf("status replication = %+v, want epoch 4, quorum 2", st.Replication)
	}

	var hz struct {
		Epoch uint64 `json:"epoch"`
	}
	rec = do(t, srv, http.MethodGet, "/healthz", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Epoch != 4 {
		t.Fatalf("healthz epoch = %d, want 4", hz.Epoch)
	}
}
