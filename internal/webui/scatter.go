package webui

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/partition"
)

// This file is the partition-facing half of the JSON API: the scatter
// endpoints a shard front tier uses to answer questions over a hash-
// partitioned domain, and the retirement endpoint the rebalance
// coordinator drives. A partitioned node cannot answer a question by
// itself — exact matches, the superlative extreme and the ranked
// partial top-K are all global — so the front tier sends the same
// question to every partition with the X-Cqads-Scatter header, each
// node answers over its rows with core.AskInDomainScatter, and the
// front folds the parts through core.MergeScatter into the bytes a
// monolith would have served.

// ScatterHeader carries the hash slice a scatter request addresses
// ("h1/4", partition.Slice.String form). Its presence switches
// GET /api/ask and POST /api/ask/batch from finished answers to
// ScatterPart wire parts. The addressed slice may be narrower than the
// slice the node still physically holds (mid-rebalance, before the
// source retired); answers are filtered to the addressed slice, so
// every row is answered by exactly one node regardless of retirement
// timing.
const ScatterHeader = "X-Cqads-Scatter"

// AdIDHeader pins the ad key of a POST /api/ads ingest. The shard
// front tier uses it to re-submit an ad to the partition owning the
// key; a node that does not own the pinned key's hash answers 421.
const AdIDHeader = "X-Cqads-Ad-Id"

// wirePart is the ScatterPart JSON the API serves: record values are
// rendered to strings exactly as APIAnswer renders them, so the final
// merged answer the front tier encodes is byte-identical to a
// monolith's.
type wirePart = core.ScatterPart[map[string]string]

// wireScatter renders a live scatter part for the wire.
func wireScatter(p *core.ScatterResult) *wirePart {
	out := &wirePart{
		Domain:           p.Domain,
		Interpretation:   p.Interpretation,
		SQL:              p.SQL,
		MaxAnswers:       p.MaxAnswers,
		PartialsEligible: p.PartialsEligible,
		Superlative:      p.Superlative,
		Desc:             p.Desc,
		HasExtreme:       p.HasExtreme,
		Extreme:          p.Extreme,
		ExactCount:       p.ExactCount,
		Answers:          make([]core.ScatterAnswer[map[string]string], 0, len(p.Answers)),
	}
	for _, a := range p.Answers {
		rec := make(map[string]string, len(a.Record))
		for k, v := range a.Record {
			rec[k] = v.String()
		}
		out.Answers = append(out.Answers, core.ScatterAnswer[map[string]string]{
			ID:                   a.ID,
			Exact:                a.Exact,
			RankSim:              a.RankSim,
			DroppedCond:          a.DroppedCond,
			SimilarityUsed:       a.SimilarityUsed,
			Record:               rec,
			DemoteRankSim:        a.DemoteRankSim,
			DemoteDropped:        a.DemoteDropped,
			DemoteSimilarityUsed: a.DemoteSimilarityUsed,
		})
	}
	return out
}

// scatterErrorStatus maps a scatter failure: a domain this node does
// not host is a misdirected request, anything else is the request's.
func scatterErrorStatus(err error) int {
	if errors.Is(err, core.ErrNotHosted) {
		return http.StatusMisdirectedRequest
	}
	return http.StatusBadRequest
}

// handleScatterAsk answers GET /api/ask carrying X-Cqads-Scatter: the
// response body is this node's ScatterPart for the question, not a
// finished answer. The domain parameter is required — scatter requests
// are already classified by the front tier.
func (s *Server) handleScatterAsk(w http.ResponseWriter, r *http.Request, sl partition.Slice) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		jsonError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	domain := r.URL.Query().Get("domain")
	if domain == "" {
		jsonError(w, http.StatusBadRequest, "scatter requests require an explicit domain")
		return
	}
	part, err := s.sys.AskInDomainScatter(domain, q, sl)
	if err != nil {
		jsonError(w, scatterErrorStatus(err), "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(wireScatter(part))
}

// handleScatterBatch answers POST /api/ask/batch carrying
// X-Cqads-Scatter: {"parts": [...]} with one ScatterPart per question
// in input order. The batch fails as a unit — the front tier retries
// or degrades the whole chunk, mirroring its per-shard batch handling.
func (s *Server) handleScatterBatch(w http.ResponseWriter, r *http.Request, sl partition.Slice) {
	var req struct {
		Domain    string   `json:"domain"`
		Questions []string `json:"questions"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if len(req.Questions) == 0 {
		jsonError(w, http.StatusBadRequest, "no questions")
		return
	}
	if req.Domain == "" {
		jsonError(w, http.StatusBadRequest, "scatter requests require an explicit domain")
		return
	}
	parts := make([]*wirePart, 0, len(req.Questions))
	for _, q := range req.Questions {
		part, err := s.sys.AskInDomainScatter(req.Domain, q, sl)
		if err != nil {
			jsonError(w, scatterErrorStatus(err), "%v", err)
			return
		}
		parts = append(parts, wireScatter(part))
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"parts": parts})
}

// scatterSlice extracts and validates the X-Cqads-Scatter header;
// ok reports whether the request is a scatter request at all.
func scatterSlice(w http.ResponseWriter, r *http.Request) (sl partition.Slice, isScatter, ok bool) {
	h := r.Header.Get(ScatterHeader)
	if h == "" {
		return partition.Slice{}, false, false
	}
	sl, err := partition.Parse(h)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "invalid %s header %q: %v", ScatterHeader, h, err)
		return partition.Slice{}, true, false
	}
	return sl, true, true
}

// handlePartitionRetire narrows this node's hosted hash slice:
//
//	POST /api/partition/retire
//	{"slice": "h1/4"}
//
// The rebalance coordinator's final step: after the router has cut the
// moved slice over to its new owner, the source drops the moved rows
// and refuses their keys from then on. Responds 200 with the slice now
// hosted. An unpartitioned node, a non-subset slice, or a read-only
// replica answer 409 — retirement is a state conflict, not a malformed
// request.
func (s *Server) handlePartitionRetire(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Slice string `json:"slice"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	sl, err := partition.Parse(req.Slice)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "invalid slice %q: %v", req.Slice, err)
		return
	}
	if err := s.sys.RetirePartition(sl); err != nil {
		jsonError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"slice": s.sys.PartitionSlice().String()})
}
