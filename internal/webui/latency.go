package webui

import (
	"net/http"
	"time"

	"repro/internal/metrics/telemetry"
)

// This file is the server's latency instrumentation: each externally
// interesting endpoint records its end-to-end service time (handler
// entry to handler return, WAL fsyncs and quorum waits included for
// ingest, the long-poll wait included for the replication stream)
// into a process-wide telemetry.Latency histogram, and GET /api/status
// reports the percentiles in a "latency" block.
//
// The contract is monotonic: histogram counts only ever grow, there
// is no reset parameter, and none will be added — scrapers derive
// rates and interval percentiles by differencing successive samples,
// so concurrent scrapers can never corrupt each other's view.

// timed wraps a handler so every request records its service time.
func timed(h *telemetry.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		fn(w, r)
		h.Record(time.Since(start).Nanoseconds())
	}
}

// endpointLatencyJSON is one endpoint's entry in the status latency
// block. Count is cumulative over the process lifetime (the rate
// denominator for scrapers); the percentiles are over all recorded
// requests, good to the histogram's power-of-two bucket resolution.
type endpointLatencyJSON struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	// SumNs and Buckets are the raw histogram — the cumulative
	// nanosecond sum and the power-of-two bucket counts with trailing
	// zero buckets trimmed. They let a front tier rebuild the exact
	// telemetry.Snapshot and Merge it across nodes: merged bucket
	// counts are plain integer adds, so the cluster-wide percentile
	// rollup is exact (to bucket resolution) and associative, unlike
	// any combination of the pre-computed percentiles above.
	SumNs   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets"`
}

// latencyJSON is the /api/status latency block: one fixed field per
// instrumented endpoint, so the JSON shape (and field order) is
// deterministic.
type latencyJSON struct {
	// Ask is GET /api/ask.
	Ask endpointLatencyJSON `json:"ask"`
	// AskBatch is POST /api/ask/batch.
	AskBatch endpointLatencyJSON `json:"ask_batch"`
	// Ingest is POST /api/ads plus DELETE /api/ads/{id}.
	Ingest endpointLatencyJSON `json:"ingest"`
	// ReplPoll is GET /api/repl/wal; the long-poll wait is part of
	// each sample, so its tail tracks the poll timeout by design.
	ReplPoll endpointLatencyJSON `json:"repl_poll"`
}

// endpointLatency renders one histogram's snapshot.
func endpointLatency(h *telemetry.Histogram) endpointLatencyJSON {
	snap := h.Snapshot()
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return endpointLatencyJSON{
		Count:   int64(snap.Count),
		MeanMs:  snap.Mean() / 1e6,
		P50Ms:   ms(snap.Quantile(0.50)),
		P90Ms:   ms(snap.Quantile(0.90)),
		P99Ms:   ms(snap.Quantile(0.99)),
		P999Ms:  ms(snap.Quantile(0.999)),
		SumNs:   snap.Sum,
		Buckets: snap.WireBuckets(),
	}
}

// latencyStatus builds the whole block from the process histograms.
func latencyStatus() latencyJSON {
	return latencyJSON{
		Ask:      endpointLatency(&telemetry.Latency.Ask),
		AskBatch: endpointLatency(&telemetry.Latency.AskBatch),
		Ingest:   endpointLatency(&telemetry.Latency.Ingest),
		ReplPoll: endpointLatency(&telemetry.Latency.ReplPoll),
	}
}
