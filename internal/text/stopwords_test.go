package text

import (
	"reflect"
	"testing"
)

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "a", "do", "have", "want", "car"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"honda", "red", "cheapest", "mileage"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestRemoveStopwordsPreservesBoundaries(t *testing.T) {
	// Boundary/negation keywords are formally stopwords but must
	// survive the filter (Sec. 4.1.2 needs them).
	in := []string{"do", "you", "have", "a", "red", "bmw", "under", "5000", "not", "manual", "or", "between"}
	want := []string{"red", "bmw", "under", "5000", "not", "manual", "or", "between"}
	got := RemoveStopwords(in)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RemoveStopwords = %v, want %v", got, want)
	}
}

func TestRemoveStopwordsEmpty(t *testing.T) {
	if got := RemoveStopwords(nil); len(got) != 0 {
		t.Errorf("RemoveStopwords(nil) = %v", got)
	}
}
