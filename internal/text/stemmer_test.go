package text

import "testing"

func TestStemKnownForms(t *testing.T) {
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubling":    "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"falling":      "fall",
		"hissing":      "hiss",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valency":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"formality":    "formal",
		"sensitivity":  "sensit",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndCase(t *testing.T) {
	if Stem("at") != "at" {
		t.Error("two-letter words should pass through")
	}
	if Stem("RUNNING") != Stem("running") {
		t.Error("stemming should be case-insensitive")
	}
}

func TestStemAll(t *testing.T) {
	got := StemAll([]string{"cars", "excluding"})
	if got[0] != "car" || got[1] != "exclud" {
		t.Errorf("StemAll = %v", got)
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem should usually be stable for our vocabulary;
	// check the domain vocabulary words used by the WS-matrix.
	for _, w := range []string{"automatic", "manual", "leather", "fiberglass", "electric"} {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable on %q: %q -> %q", w, once, twice)
		}
	}
}
