package text

import "strings"

// Stem reduces an English word to its grammatical root using the
// Porter stemming algorithm (Porter, 1980). The WS-matrix construction
// (Sec. 4.3.2) and the negation detector ("excluding" → "exclud")
// both operate on stemmed words.
func Stem(word string) string {
	w := strings.ToLower(word)
	if len(w) <= 2 {
		return w
	}
	s := stemState{b: []byte(w)}
	s.k = len(s.b) - 1
	s.step1ab()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5()
	return string(s.b[:s.k+1])
}

// stemState carries the working buffer of the Porter algorithm.
// b[0..k] is the word being stemmed; j is a general offset used by the
// measure-based condition helpers.
type stemState struct {
	b []byte
	k int
	j int
}

func (s *stemState) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	}
	return true
}

// m measures the number of consonant-vowel sequences in b[0..j].
func (s *stemState) m() int {
	n := 0
	i := 0
	for {
		if i > s.j {
			return n
		}
		if !s.cons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.cons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.cons(i) {
				break
			}
			i++
		}
		i++
	}
}

func (s *stemState) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

func (s *stemState) doubleC(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.cons(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant and the
// final consonant is not w, x or y.
func (s *stemState) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func (s *stemState) ends(suffix string) bool {
	l := len(suffix)
	o := s.k - l + 1
	if o < 0 {
		return false
	}
	if string(s.b[o:s.k+1]) != suffix {
		return false
	}
	s.j = s.k - l
	return true
}

func (s *stemState) setTo(repl string) {
	l := len(repl)
	copy(s.b[s.j+1:], repl)
	s.k = s.j + l
}

func (s *stemState) r(repl string) {
	if s.m() > 0 {
		s.setTo(repl)
	}
}

func (s *stemState) step1ab() {
	if s.b[s.k] == 's' {
		switch {
		case s.ends("sses"):
			s.k -= 2
		case s.ends("ies"):
			s.setTo("i")
		case s.b[s.k-1] != 's':
			s.k--
		}
	}
	if s.ends("eed") {
		if s.m() > 0 {
			s.k--
		}
	} else if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.k = s.j
		switch {
		case s.ends("at"):
			s.setTo("ate")
		case s.ends("bl"):
			s.setTo("ble")
		case s.ends("iz"):
			s.setTo("ize")
		case s.doubleC(s.k):
			s.k--
			switch s.b[s.k] {
			case 'l', 's', 'z':
				s.k++
			}
		default:
			if s.m() == 1 && s.cvc(s.k) {
				s.j = s.k
				s.setTo("e")
			}
		}
	}
}

func (s *stemState) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[s.k] = 'i'
	}
}

var step2Rules = []struct{ suf, repl string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"bli", "ble"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"},
	{"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
	{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
	{"iviti", "ive"}, {"biliti", "ble"}, {"logi", "log"},
}

func (s *stemState) step2() {
	for _, rule := range step2Rules {
		if s.ends(rule.suf) {
			s.r(rule.repl)
			return
		}
	}
}

var step3Rules = []struct{ suf, repl string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
	{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (s *stemState) step3() {
	for _, rule := range step3Rules {
		if s.ends(rule.suf) {
			s.r(rule.repl)
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (s *stemState) step4() {
	for _, suf := range step4Suffixes {
		if !s.ends(suf) {
			continue
		}
		if suf == "ion" {
			if s.j < 0 || (s.b[s.j] != 's' && s.b[s.j] != 't') {
				continue
			}
		}
		if s.m() > 1 {
			s.k = s.j
		}
		return
	}
}

func (s *stemState) step5() {
	s.j = s.k
	if s.b[s.k] == 'e' {
		a := s.m()
		if a > 1 || (a == 1 && !s.cvc(s.k-1)) {
			s.k--
		}
	}
	s.j = s.k
	if s.b[s.k] == 'l' && s.doubleC(s.k) && s.m() > 1 {
		s.k--
	}
}

// StemAll stems every word in words, returning a new slice.
func StemAll(words []string) []string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = Stem(w)
	}
	return out
}
