package text

// SimilarText computes the percentage similarity of two strings using
// the classic PHP similar_text algorithm: it finds the longest common
// substring, recurses on the unmatched prefixes and suffixes, and
// reports 2*matched / (len(a)+len(b)). CQAds uses this to pick the
// best replacement for a misspelled keyword (Sec. 4.2.1): the
// "similar text function which calculates their similarity based on
// the number of common characters and their corresponding positions".
//
// Comparison is rune-based, not byte-based: multibyte keywords
// ("café", "škoda") are matched on whole characters, so a shared UTF-8
// lead byte between two different accented characters never counts as
// a match and lengths are character counts. For ASCII inputs the
// result is identical to the byte-based formulation.
//
// The result is in [0,1]; identical non-empty strings score 1.
func SimilarText(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	sim := similarRunes(ra, rb)
	return 2 * float64(sim) / float64(len(ra)+len(rb))
}

// similarRunes returns the number of matching characters found by the
// similar_text recursion.
func similarRunes(a, b []rune) int {
	posA, posB, max := longestCommonRun(a, b)
	if max == 0 {
		return 0
	}
	sum := max
	if posA > 0 && posB > 0 {
		sum += similarRunes(a[:posA], b[:posB])
	}
	if posA+max < len(a) && posB+max < len(b) {
		sum += similarRunes(a[posA+max:], b[posB+max:])
	}
	return sum
}

// longestCommonRun finds the longest run of characters common to a
// and b, returning its start positions and length.
func longestCommonRun(a, b []rune) (posA, posB, max int) {
	for i := 0; i < len(a); i++ {
		for j := 0; j < len(b); j++ {
			k := 0
			for i+k < len(a) && j+k < len(b) && a[i+k] == b[j+k] {
				k++
			}
			if k > max {
				posA, posB, max = i, j, k
			}
		}
	}
	return posA, posB, max
}

// Levenshtein returns the edit distance between a and b (insertions,
// deletions, substitutions all cost 1), counted in runes: replacing
// "é" with "e" is one edit, not two byte edits. Used as a tie-breaker
// when two trie alternatives have equal SimilarText scores.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// IsSubsequence reports whether needle's characters all appear in
// haystack in the same order (not necessarily contiguously). This is
// the core rule of the shorthand detector (Sec. 4.2.3): "any shorthand
// notation N of a data value V only includes characters from V, and
// the characters in N should have the same order as characters in V".
// Characters are runes: a multibyte character either matches whole or
// not at all, so a needle can never match the middle of another
// character's encoding.
func IsSubsequence(needle, haystack string) bool {
	if len(needle) == 0 {
		return true
	}
	rn := []rune(needle)
	i := 0
	for _, h := range haystack {
		if i < len(rn) && rn[i] == h {
			i++
		}
	}
	return i == len(rn)
}
