package text

// SimilarText computes the percentage similarity of two strings using
// the classic PHP similar_text algorithm: it finds the longest common
// substring, recurses on the unmatched prefixes and suffixes, and
// reports 2*matched / (len(a)+len(b)). CQAds uses this to pick the
// best replacement for a misspelled keyword (Sec. 4.2.1): the
// "similar text function which calculates their similarity based on
// the number of common characters and their corresponding positions".
//
// The result is in [0,1]; identical non-empty strings score 1.
func SimilarText(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sim := similarChars(a, b)
	return 2 * float64(sim) / float64(len(a)+len(b))
}

// similarChars returns the number of matching characters found by the
// similar_text recursion.
func similarChars(a, b string) int {
	posA, posB, max := longestCommonSubstring(a, b)
	if max == 0 {
		return 0
	}
	sum := max
	if posA > 0 && posB > 0 {
		sum += similarChars(a[:posA], b[:posB])
	}
	if posA+max < len(a) && posB+max < len(b) {
		sum += similarChars(a[posA+max:], b[posB+max:])
	}
	return sum
}

// longestCommonSubstring finds the longest run of bytes common to a
// and b, returning its start positions and length.
func longestCommonSubstring(a, b string) (posA, posB, max int) {
	for i := 0; i < len(a); i++ {
		for j := 0; j < len(b); j++ {
			k := 0
			for i+k < len(a) && j+k < len(b) && a[i+k] == b[j+k] {
				k++
			}
			if k > max {
				posA, posB, max = i, j, k
			}
		}
	}
	return posA, posB, max
}

// Levenshtein returns the edit distance between a and b (insertions,
// deletions, substitutions all cost 1). Used as a tie-breaker when two
// trie alternatives have equal SimilarText scores.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// IsSubsequence reports whether needle's characters all appear in
// haystack in the same order (not necessarily contiguously). This is
// the core rule of the shorthand detector (Sec. 4.2.3): "any shorthand
// notation N of a data value V only includes characters from V, and
// the characters in N should have the same order as characters in V".
func IsSubsequence(needle, haystack string) bool {
	if len(needle) == 0 {
		return true
	}
	i := 0
	for j := 0; j < len(haystack) && i < len(needle); j++ {
		if needle[i] == haystack[j] {
			i++
		}
	}
	return i == len(needle)
}
