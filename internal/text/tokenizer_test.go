package text

import (
	"reflect"
	"testing"
)

func TestTokenizeWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Do you have a 2 door red BMW?", []string{"do", "you", "have", "a", "2", "door", "red", "bmw"}},
		{"Cheapest 2dr mazda", []string{"cheapest", "2dr", "mazda"}},
		{"4-door sedan", []string{"4door", "sedan"}},
		{"one,two;three", []string{"one", "two", "three"}},
	}
	for _, c := range cases {
		got := Words(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, empty := range []string{"", "   ", "?!."} {
		if got := Words(empty); len(got) != 0 {
			t.Errorf("Words(%q) = %v, want empty", empty, got)
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		in    string
		value float64
	}{
		{"$5000", 5000},
		{"$5,000", 5000},
		{"20k", 20000},
		{"20K", 20000},
		{"1.5m", 1.5e6},
		{"2.5", 2.5},
		{"15,000", 15000},
	}
	for _, c := range cases {
		toks := Tokenize(c.in)
		if len(toks) != 1 {
			t.Fatalf("Tokenize(%q) = %d tokens, want 1", c.in, len(toks))
		}
		if !toks[0].IsNumber {
			t.Errorf("Tokenize(%q): not a number token", c.in)
			continue
		}
		if toks[0].Value != c.value {
			t.Errorf("Tokenize(%q) value = %g, want %g", c.in, toks[0].Value, c.value)
		}
	}
}

func TestTokenizeMixedAlphanumeric(t *testing.T) {
	toks := Tokenize("2dr")
	if len(toks) != 1 || toks[0].IsNumber {
		t.Fatalf("Tokenize(2dr) = %+v, want single word token", toks)
	}
	if toks[0].Text != "2dr" {
		t.Errorf("text = %q, want 2dr", toks[0].Text)
	}
}

func TestTokenizeDollarPrefixKept(t *testing.T) {
	toks := Tokenize("less than $2000")
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3", len(toks))
	}
	num := toks[2]
	if !num.IsNumber || num.Value != 2000 {
		t.Fatalf("number token = %+v", num)
	}
	if num.Text[0] != '$' {
		t.Errorf("dollar prefix lost: %q", num.Text)
	}
}

func TestTokenizeHyphenJoin(t *testing.T) {
	for in, want := range map[string]string{
		"2-dr":   "2dr",
		"4-door": "4door",
	} {
		toks := Tokenize(in)
		if len(toks) != 1 || toks[0].Text != want {
			t.Errorf("Tokenize(%q) = %+v, want one token %q", in, toks, want)
		}
	}
}

func TestNormalizeSpace(t *testing.T) {
	if got := NormalizeSpace("  a   b \t c  "); got != "a b c" {
		t.Errorf("NormalizeSpace = %q", got)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	toks := Tokenize("red bmw")
	if toks[0].Start != 0 || toks[1].Start != 4 {
		t.Errorf("offsets = %d, %d; want 0, 4", toks[0].Start, toks[1].Start)
	}
}
