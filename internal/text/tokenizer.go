// Package text provides the text-processing substrate used throughout
// CQAds: tokenization, stopword removal, Porter stemming, and the
// string-similarity primitives (similar_text, Levenshtein distance)
// that drive spelling correction in the tagging trie.
package text

import (
	"strings"
	"unicode"
)

// Token is a single lexical unit extracted from a question or document.
type Token struct {
	// Text is the raw token text, lower-cased.
	Text string
	// Start is the byte offset of the token in the original input.
	Start int
	// IsNumber reports whether the token parses as a numeric quantity
	// (possibly with a magnitude suffix such as "20k" or "$5000").
	IsNumber bool
	// Value is the parsed numeric value when IsNumber is true.
	Value float64
}

// Tokenize splits s into lower-cased tokens. Punctuation separates
// tokens, except that '-', '.', '$' and ',' are handled specially:
// "4-door" splits into "4" and "door", "$5,000" becomes a single
// numeric token with value 5000, and "2.5k" parses as 2500.
func Tokenize(s string) []Token {
	var tokens []Token
	runes := []rune(s)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '$' || unicode.IsDigit(r):
			tok, next := scanNumber(runes, i)
			tokens = append(tokens, tok)
			i = next
		case unicode.IsLetter(r):
			start := i
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i])) {
				i++
			}
			word := strings.ToLower(string(runes[start:i]))
			tokens = append(tokens, Token{Text: word, Start: start})
		default:
			// Punctuation: skip, acting as a separator.
			i++
		}
	}
	return tokens
}

// scanNumber scans a numeric token starting at position i. It accepts
// an optional leading '$', digits with ',' thousand separators, an
// optional decimal part, and an optional trailing magnitude suffix
// ('k'/'K' = 1e3, 'm'/'M' = 1e6). Mixed alphanumerics that are not
// magnitudes (e.g. "2dr") are returned as word tokens so that
// shorthand detection can process them.
func scanNumber(runes []rune, i int) (Token, int) {
	start := i
	hasDollar := false
	if runes[i] == '$' {
		hasDollar = true
		i++
	}
	var value float64
	sawDigit := false
	for i < len(runes) && (unicode.IsDigit(runes[i]) || runes[i] == ',') {
		if unicode.IsDigit(runes[i]) {
			value = value*10 + float64(runes[i]-'0')
			sawDigit = true
		}
		i++
	}
	if i < len(runes) && runes[i] == '.' && i+1 < len(runes) && unicode.IsDigit(runes[i+1]) {
		i++
		frac := 0.1
		for i < len(runes) && unicode.IsDigit(runes[i]) {
			value += float64(runes[i]-'0') * frac
			frac /= 10
			i++
		}
	}
	if !sawDigit {
		// Lone '$' with no digits: treat as a word token "$".
		return Token{Text: "$", Start: start}, i
	}
	// Hyphenated continuation ("2-dr", "4-door") joins into one word
	// token so shorthand detection sees the whole notation.
	if i < len(runes) && runes[i] == '-' && i+1 < len(runes) && unicode.IsLetter(runes[i+1]) {
		i++ // consume '-'
		for i < len(runes) && unicode.IsLetter(runes[i]) {
			i++
		}
		word := strings.ToLower(strings.ReplaceAll(string(runes[start:i]), "-", ""))
		if hasDollar {
			word = strings.TrimPrefix(word, "$")
		}
		return Token{Text: word, Start: start}, i
	}
	// Magnitude suffix or alphanumeric continuation ("2dr", "4x4").
	if i < len(runes) && unicode.IsLetter(runes[i]) {
		letterStart := i
		for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i])) {
			i++
		}
		suffix := strings.ToLower(string(runes[letterStart:i]))
		switch suffix {
		case "k":
			value *= 1e3
		case "m":
			value *= 1e6
		default:
			// "2dr", "4wd": return the whole run as a word token.
			word := strings.ToLower(string(runes[start:i]))
			if hasDollar {
				word = strings.TrimPrefix(word, "$")
			}
			return Token{Text: word, Start: start}, i
		}
	}
	raw := strings.ToLower(string(runes[start:i]))
	return Token{Text: raw, Start: start, IsNumber: true, Value: value}, i
}

// Words returns only the token texts of Tokenize(s).
func Words(s string) []string {
	toks := Tokenize(s)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// NormalizeSpace collapses runs of whitespace in s to single spaces
// and trims the ends.
func NormalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
