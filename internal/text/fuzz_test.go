package text

import "testing"

// FuzzTokenize checks tokenizer invariants on arbitrary input: no
// panics, no empty tokens, offsets within bounds and increasing.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"Do you have a 2 door red BMW?",
		"$5,000 20k 1.5m 2dr 4-door",
		"", "   ", "...", "日本語 question",
		"a$b$c", "$", "$$", "1.2.3", "-5", "2-", "2-x-3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks := Tokenize(input)
		last := -1
		for i, tok := range toks {
			if tok.Text == "" {
				t.Fatalf("token %d empty for input %q", i, input)
			}
			if tok.Start < 0 {
				t.Fatalf("token %d negative offset for %q", i, input)
			}
			if tok.Start <= last && i > 0 {
				t.Fatalf("offsets not increasing for %q: %d then %d", input, last, tok.Start)
			}
			last = tok.Start
		}
	})
}

// FuzzStem checks the stemmer never panics and always returns a
// non-empty stem no longer than its input (for ASCII words).
func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"running", "caresses", "sky", "a", "", "relational",
		"agreeement", "yyyyy", "bbbb",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, word string) {
		got := Stem(word)
		if len(word) > 0 && len(got) == 0 {
			t.Fatalf("Stem(%q) = empty", word)
		}
		if len(got) > len(word) {
			t.Fatalf("Stem(%q) = %q grew", word, got)
		}
	})
}

// FuzzSimilarText checks the score stays in [0,1] for any byte pair.
func FuzzSimilarText(f *testing.F) {
	f.Add("accord", "accorr")
	f.Add("", "")
	f.Add("a", "aaaa")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 64 || len(b) > 64 {
			return // keep the quadratic LCS bounded
		}
		s := SimilarText(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("SimilarText(%q,%q) = %g", a, b, s)
		}
	})
}
