package text

import (
	"testing"
	"testing/quick"
)

func TestSimilarTextBasics(t *testing.T) {
	if got := SimilarText("accord", "accord"); got != 1 {
		t.Errorf("identical strings = %g, want 1", got)
	}
	if got := SimilarText("", ""); got != 1 {
		t.Errorf("empty strings = %g, want 1", got)
	}
	if got := SimilarText("abc", ""); got != 0 {
		t.Errorf("one empty = %g, want 0", got)
	}
	if got := SimilarText("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %g, want 0", got)
	}
}

func TestSimilarTextTypoScoresHigh(t *testing.T) {
	// The paper's example: "accorr" should be repaired to "accord".
	typo := SimilarText("accorr", "accord")
	other := SimilarText("accorr", "camry")
	if typo <= other {
		t.Errorf("typo %g should beat unrelated %g", typo, other)
	}
	if typo < 0.7 {
		t.Errorf("typo similarity = %g, want >= 0.7", typo)
	}
}

func TestSimilarTextProperties(t *testing.T) {
	// The score is bounded in [0,1] and maximal exactly on equal
	// strings. (Like PHP's similar_text, the score is not strictly
	// symmetric when different LCS tie-breaks are possible, so
	// symmetry is not asserted.)
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		s := SimilarText(a, b)
		if s < 0 || s > 1 {
			return false
		}
		if a == b && s != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSimilarTextRuneSafety: multibyte keywords compare on whole
// characters. Byte-based matching would count the shared UTF-8 lead
// byte of two different accented characters as a match and use byte
// lengths in the normalization, skewing misspelling repair for
// non-ASCII make/model names.
func TestSimilarTextRuneSafety(t *testing.T) {
	// "é" (C3 A9) and "è" (C3 A8) share a lead byte but are different
	// characters: similarity must be 0, not the byte-level 0.5.
	if got := SimilarText("é", "è"); got != 0 {
		t.Errorf(`SimilarText("é", "è") = %g, want 0`, got)
	}
	if got := SimilarText("café", "café"); got != 1 {
		t.Errorf(`identical multibyte strings = %g, want 1`, got)
	}
	// One differing character out of four: 2*3/(4+4) with rune
	// lengths. Byte lengths (5+5) would give 0.6 at best.
	if got, want := SimilarText("café", "cafe"), 0.75; got != want {
		t.Errorf(`SimilarText("café", "cafe") = %g, want %g`, got, want)
	}
	// Misspelling repair over accented model names: the near-match
	// must beat the unrelated value.
	typo := SimilarText("citroen", "citroën")
	other := SimilarText("citroen", "škoda")
	if typo <= other || typo < 0.8 {
		t.Errorf("citroën repair: typo %g, unrelated %g", typo, other)
	}
}

// TestLevenshteinRuneSafety: edits count characters, not bytes.
func TestLevenshteinRuneSafety(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"café", "cafe", 1},    // é→e is one substitution, not two byte edits
		{"citroën", "citroen", 1},
		{"škoda", "skoda", 1},
		{"é", "è", 1},
		{"日本語", "日本", 1}, // one 3-byte character dropped
		{"日本語", "日本語", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestIsSubsequenceRuneSafety: shorthand matching treats a multibyte
// character as one unit.
func TestIsSubsequenceRuneSafety(t *testing.T) {
	cases := []struct {
		n, h string
		want bool
	}{
		{"cfé", "café", true},
		{"café", "ca fé 2000", true},
		{"é", "è", false}, // shared lead byte is not a shared character
		{"日語", "日本語", true},
		{"語日", "日本語", false},
	}
	for _, c := range cases {
		if got := IsSubsequence(c.n, c.h); got != c.want {
			t.Errorf("IsSubsequence(%q,%q) = %v, want %v", c.n, c.h, got, c.want)
		}
	}
}

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"honda", "hondda", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	sym := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			return false
		}
		// Distance bounded by the longer string's length (in runes —
		// the unit the distance is now defined on).
		max := len([]rune(a))
		if n := len([]rune(b)); n > max {
			max = n
		}
		// Identity of indiscernibles, over the rune decoding (byte
		// truncation above can leave invalid UTF-8 tails that decode
		// to the same replacement runes).
		if (d == 0) != (string([]rune(a)) == string([]rune(b))) {
			return false
		}
		return d <= max
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		for _, s := range []*string{&a, &b, &c} {
			if len(*s) > 15 {
				*s = (*s)[:15]
			}
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIsSubsequence(t *testing.T) {
	cases := []struct {
		n, h string
		want bool
	}{
		{"2dr", "2 door", true},
		{"4wd", "4 wheel drive", true},
		{"", "anything", true},
		{"abc", "abc", true},
		{"acb", "abc", false},
		{"abc", "ab", false},
	}
	for _, c := range cases {
		if got := IsSubsequence(c.n, c.h); got != c.want {
			t.Errorf("IsSubsequence(%q,%q) = %v, want %v", c.n, c.h, got, c.want)
		}
	}
}

func TestIsSubsequenceProperties(t *testing.T) {
	// Every prefix of s is a subsequence of s; s is one of itself.
	// Prefixes are cut on rune boundaries — the unit the subsequence
	// rule is defined on (a mid-rune byte cut is not a prefix of any
	// character sequence).
	f := func(s string) bool {
		r := []rune(s)
		if len(r) > 30 {
			r = r[:30]
			s = string(r)
		}
		if !IsSubsequence(s, s) {
			return false
		}
		return IsSubsequence(string(r[:len(r)/2]), s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
