package text

import (
	"testing"
	"testing/quick"
)

func TestSimilarTextBasics(t *testing.T) {
	if got := SimilarText("accord", "accord"); got != 1 {
		t.Errorf("identical strings = %g, want 1", got)
	}
	if got := SimilarText("", ""); got != 1 {
		t.Errorf("empty strings = %g, want 1", got)
	}
	if got := SimilarText("abc", ""); got != 0 {
		t.Errorf("one empty = %g, want 0", got)
	}
	if got := SimilarText("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %g, want 0", got)
	}
}

func TestSimilarTextTypoScoresHigh(t *testing.T) {
	// The paper's example: "accorr" should be repaired to "accord".
	typo := SimilarText("accorr", "accord")
	other := SimilarText("accorr", "camry")
	if typo <= other {
		t.Errorf("typo %g should beat unrelated %g", typo, other)
	}
	if typo < 0.7 {
		t.Errorf("typo similarity = %g, want >= 0.7", typo)
	}
}

func TestSimilarTextProperties(t *testing.T) {
	// The score is bounded in [0,1] and maximal exactly on equal
	// strings. (Like PHP's similar_text, the score is not strictly
	// symmetric when different LCS tie-breaks are possible, so
	// symmetry is not asserted.)
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		s := SimilarText(a, b)
		if s < 0 || s > 1 {
			return false
		}
		if a == b && s != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"honda", "hondda", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	sym := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			return false
		}
		// Distance bounded by the longer string's length.
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		// Identity of indiscernibles.
		if (d == 0) != (a == b) {
			return false
		}
		return d <= max
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		for _, s := range []*string{&a, &b, &c} {
			if len(*s) > 15 {
				*s = (*s)[:15]
			}
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIsSubsequence(t *testing.T) {
	cases := []struct {
		n, h string
		want bool
	}{
		{"2dr", "2 door", true},
		{"4wd", "4 wheel drive", true},
		{"", "anything", true},
		{"abc", "abc", true},
		{"acb", "abc", false},
		{"abc", "ab", false},
	}
	for _, c := range cases {
		if got := IsSubsequence(c.n, c.h); got != c.want {
			t.Errorf("IsSubsequence(%q,%q) = %v, want %v", c.n, c.h, got, c.want)
		}
	}
}

func TestIsSubsequenceProperties(t *testing.T) {
	// Every prefix of s is a subsequence of s; s is one of itself.
	f := func(s string) bool {
		if len(s) > 30 {
			s = s[:30]
		}
		if !IsSubsequence(s, s) {
			return false
		}
		return IsSubsequence(s[:len(s)/2], s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
