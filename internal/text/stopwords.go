package text

import "strings"

// stopwords is the stopword list used when simplifying questions
// (Sec. 4.1.4: "CQAds eliminates all the non-essential keywords, which
// are stopwords, which carry little meaning"). It is the classic
// English function-word list extended with question-formulaic words
// that appear in ads questions ("find", "want", "show", ...).
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range strings.Fields(stopwordList) {
		stopwords[w] = struct{}{}
	}
}

const stopwordList = `
a about above after again against all am an and any are aren as at be
because been before being below between both but by can cannot could
couldn did didn do does doesn doing don down during each few for from
further had hadn has hasn have haven having he her here hers herself
him himself his how i if in into is isn it its itself let me more most
mustn my myself no nor not of off on once only or other ought our ours
ourselves out over own same shan she should shouldn so some such than
that the their theirs them themselves then there these they this those
through to too under until up very was wasn we were weren what when
where which while who whom why with won would wouldn you your yours
yourself yourselves
do you have want looking look seeking seek need needs please show give
get find me i am anyone any got sell selling buy buying interested
hi hello thanks thank
car cars vehicle vehicles item items thing things ad ads listing
listings one ones priced
`

// IsStopword reports whether w (already lower-cased) is a stopword.
//
// Note that comparison words such as "between", "under", "above" ARE
// in the classic stopword list but are load-bearing in ads questions
// (they are boundary keywords, Sec. 4.1.2). Callers that tag questions
// must consult the trie/boundary tables BEFORE dropping stopwords;
// RemoveStopwords below preserves them.
func IsStopword(w string) bool {
	_, ok := stopwords[w]
	return ok
}

// preserved are words that are formally stopwords but carry selection
// semantics in ads questions: boundary and negation keywords.
var preserved = map[string]struct{}{
	"between": {}, "under": {}, "above": {}, "below": {}, "over": {},
	"not": {}, "no": {}, "without": {}, "more": {}, "most": {},
	"than": {}, "within": {}, "or": {}, "and": {}, "except": {},
}

// RemoveStopwords filters stopwords out of words, preserving boundary,
// negation and Boolean keywords that the question evaluator needs.
func RemoveStopwords(words []string) []string {
	out := words[:0:0]
	for _, w := range words {
		if _, keep := preserved[w]; keep {
			out = append(out, w)
			continue
		}
		if IsStopword(w) {
			continue
		}
		out = append(out, w)
	}
	return out
}
