package schema

import (
	"strings"
	"testing"
)

func TestAllDomainsValid(t *testing.T) {
	for _, name := range DomainNames {
		s := ByName(name)
		if err := s.Validate(); err != nil {
			t.Errorf("domain %s: %v", name, err)
		}
		if s.Domain != name {
			t.Errorf("domain %s: Domain field = %q", name, s.Domain)
		}
	}
	if len(DomainNames) != 8 {
		t.Errorf("paper evaluates 8 domains, got %d", len(DomainNames))
	}
}

func TestDomainsReturnsCopies(t *testing.T) {
	a := Domains()
	b := Domains()
	a["cars"].Attrs[0].Name = "mutated"
	if b["cars"].Attrs[0].Name == "mutated" {
		t.Error("Domains() returned shared schema instances")
	}
}

func TestByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ByName(unknown) did not panic")
		}
	}()
	ByName("no-such-domain")
}

func TestAttrLookups(t *testing.T) {
	s := Cars()
	a, ok := s.Attr("price")
	if !ok || a.Type != TypeIII {
		t.Fatalf("price attr = %+v, ok=%v", a, ok)
	}
	if _, ok := s.Attr("nonexistent"); ok {
		t.Error("Attr(nonexistent) should fail")
	}
	if got := s.TypeOf("make"); got != TypeI {
		t.Errorf("TypeOf(make) = %v", got)
	}
	if got := s.TypeOf("missing"); got != 0 {
		t.Errorf("TypeOf(missing) = %v, want 0", got)
	}
}

func TestCandidatesForExample3(t *testing.T) {
	// Paper Example 3: in the car-ads domain, 2000 can be a Year,
	// Price or Mileage; 4000 can be Price or Mileage but not Year.
	s := Cars()
	names := func(attrs []Attribute) string {
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = a.Name
		}
		return strings.Join(parts, ",")
	}
	if got := names(s.CandidatesFor(2000)); got != "year,price,mileage" {
		t.Errorf("CandidatesFor(2000) = %s", got)
	}
	if got := names(s.CandidatesFor(4000)); got != "price,mileage" {
		t.Errorf("CandidatesFor(4000) = %s", got)
	}
	if got := s.CandidatesFor(1e9); len(got) != 0 {
		t.Errorf("CandidatesFor(1e9) = %v, want empty", got)
	}
}

func TestAttrForUnit(t *testing.T) {
	s := Cars()
	a, ok := s.AttrForUnit("$")
	if !ok || a.Name != "price" {
		t.Errorf("AttrForUnit($) = %+v, %v", a, ok)
	}
	a, ok = s.AttrForUnit("miles")
	if !ok || a.Name != "mileage" {
		t.Errorf("AttrForUnit(miles) = %+v, %v", a, ok)
	}
	if _, ok := s.AttrForUnit("furlongs"); ok {
		t.Error("AttrForUnit(furlongs) should fail")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Schema)
	}{
		{"empty domain", func(s *Schema) { s.Domain = "" }},
		{"duplicate attr", func(s *Schema) {
			s.Attrs = append(s.Attrs, Attribute{Name: "make", Type: TypeII, Values: []string{"x"}})
		}},
		{"no type I", func(s *Schema) {
			var kept []Attribute
			for _, a := range s.Attrs {
				if a.Type != TypeI {
					kept = append(kept, a)
				}
			}
			s.Attrs = kept
		}},
		{"empty range", func(s *Schema) {
			for i := range s.Attrs {
				if s.Attrs[i].Name == "price" {
					s.Attrs[i].Max = s.Attrs[i].Min
				}
			}
		}},
		{"typeI no values", func(s *Schema) {
			for i := range s.Attrs {
				if s.Attrs[i].Type == TypeI {
					s.Attrs[i].Values = nil
				}
			}
		}},
		{"bad superlative attr", func(s *Schema) { s.SuperlativeAttr["weirdest"] = Superlative{Attr: "ghost"} }},
		{"superlative on categorical", func(s *Schema) { s.SuperlativeAttr["reddest"] = Superlative{Attr: "color"} }},
		{"invalid attr type", func(s *Schema) { s.Attrs[0].Type = 0 }},
	}
	for _, c := range cases {
		s := Cars()
		c.mod(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate() passed, want error", c.name)
		}
	}
}

func TestRangeAndInRange(t *testing.T) {
	a := Attribute{Name: "price", Type: TypeIII, Min: 500, Max: 80000}
	if a.Range() != 79500 {
		t.Errorf("Range = %g", a.Range())
	}
	if !a.InRange(500) || !a.InRange(80000) || a.InRange(499) || a.InRange(80001) {
		t.Error("InRange boundaries wrong")
	}
}

func TestAttrsOfTypeOrdering(t *testing.T) {
	s := Cars()
	t1 := s.AttrsOfType(TypeI)
	if len(t1) != 2 || t1[0].Name != "make" || t1[1].Name != "model" {
		t.Errorf("TypeI attrs = %+v", t1)
	}
	if n := len(s.NumericAttrs()); n != 3 {
		t.Errorf("numeric attrs = %d, want 3", n)
	}
}
