package schema

// This file defines the eight ads domains evaluated in the paper
// (Sec. 5.1): Cars, Motorcycles, Clothing, Computer Science Jobs,
// Furniture, Food Coupons, Musical Instruments, and Jewellery. The
// schemas follow the paper's convention: Type I attributes are the
// product identifiers (what eBay's push-down menus enumerate), Type II
// attributes are descriptive properties, Type III attributes carry
// quantitative values with their eBay-style value ranges.

// DomainNames lists the eight domains in the paper's order.
var DomainNames = []string{
	"cars", "motorcycles", "clothing", "csjobs",
	"furniture", "foodcoupons", "instruments", "jewellery",
}

// Domains returns freshly-built schemas for all eight ads domains,
// keyed by domain name. Each call returns independent copies so
// callers may mutate them safely.
func Domains() map[string]*Schema {
	out := make(map[string]*Schema, len(DomainNames))
	for _, name := range DomainNames {
		out[name] = ByName(name)
	}
	return out
}

// ByName builds the schema for the named domain. It panics on an
// unknown name; use DomainNames for the valid set.
func ByName(name string) *Schema {
	switch name {
	case "cars":
		return Cars()
	case "motorcycles":
		return Motorcycles()
	case "clothing":
		return Clothing()
	case "csjobs":
		return CSJobs()
	case "furniture":
		return Furniture()
	case "foodcoupons":
		return FoodCoupons()
	case "instruments":
		return Instruments()
	case "jewellery":
		return Jewellery()
	}
	panic("schema: unknown domain " + name)
}

// Cars is the running-example domain of the paper.
func Cars() *Schema {
	return &Schema{
		Domain: "cars",
		Table:  "car_ads",
		Attrs: []Attribute{
			{Name: "make", Type: TypeI, Values: []string{
				"toyota", "honda", "ford", "chevy", "bmw", "mazda",
				"nissan", "dodge", "hyundai", "subaru", "volkswagen",
				"audi", "lexus", "kia", "jeep",
			}},
			{Name: "model", Type: TypeI, Values: []string{
				"camry", "corolla", "accord", "civic", "focus", "mustang",
				"malibu", "impala", "3series", "m3", "mazda3", "miata",
				"altima", "sentra", "charger", "elantra", "outback",
				"jetta", "a4", "es350", "sorento", "wrangler",
			}},
			{Name: "color", Type: TypeII, Values: []string{
				"red", "blue", "black", "white", "silver", "grey",
				"green", "gold", "yellow", "orange",
			}},
			{Name: "transmission", Type: TypeII, Values: []string{
				"automatic", "manual",
			}},
			{Name: "doors", Type: TypeII, Values: []string{
				"2 door", "4 door",
			}},
			{Name: "drivetrain", Type: TypeII, Values: []string{
				"2 wheel drive", "4 wheel drive", "all wheel drive",
			}},
			{Name: "year", Type: TypeIII, Min: 1985, Max: 2011},
			{Name: "price", Type: TypeIII, Min: 500, Max: 80000,
				Unit: []string{"$", "usd", "dollar", "dollars", "bucks"}},
			{Name: "mileage", Type: TypeIII, Min: 0, Max: 250000,
				Unit: []string{"miles", "mile", "mi"}},
		},
		SuperlativeAttr: map[string]Superlative{
			"cheapest":    {Attr: "price"},
			"inexpensive": {Attr: "price"},
			"newest":      {Attr: "year", Descending: true},
			"latest":      {Attr: "year", Descending: true},
			"oldest":      {Attr: "year"},
			"earliest":    {Attr: "year"},
		},
	}
}

// Motorcycles shares vocabulary with Cars (the paper notes this causes
// the lowest classification accuracy for the two domains).
func Motorcycles() *Schema {
	return &Schema{
		Domain: "motorcycles",
		Table:  "motorcycle_ads",
		Attrs: []Attribute{
			{Name: "make", Type: TypeI, Values: []string{
				"harley", "yamaha", "kawasaki", "suzuki", "ducati",
				"triumph", "honda", "bmw", "ktm", "aprilia",
			}},
			{Name: "model", Type: TypeI, Values: []string{
				"sportster", "r1", "ninja", "gsxr", "monster",
				"bonneville", "cbr", "goldwing", "duke", "tuono",
				"vulcan", "rebel", "gs",
			}},
			{Name: "color", Type: TypeII, Values: []string{
				"red", "blue", "black", "white", "silver", "green",
				"orange", "yellow",
			}},
			{Name: "category", Type: TypeII, Values: []string{
				"cruiser", "sportbike", "touring", "dirt bike", "scooter",
			}},
			{Name: "condition", Type: TypeII, Values: []string{
				"new", "used", "salvage",
			}},
			{Name: "year", Type: TypeIII, Min: 1985, Max: 2011},
			{Name: "price", Type: TypeIII, Min: 300, Max: 40000,
				Unit: []string{"$", "usd", "dollar", "dollars", "bucks"}},
			{Name: "mileage", Type: TypeIII, Min: 0, Max: 120000,
				Unit: []string{"miles", "mile", "mi"}},
			{Name: "engine", Type: TypeIII, Min: 50, Max: 2300,
				Unit: []string{"cc"}},
		},
		SuperlativeAttr: map[string]Superlative{
			"cheapest":    {Attr: "price"},
			"inexpensive": {Attr: "price"},
			"newest":      {Attr: "year", Descending: true},
			"latest":      {Attr: "year", Descending: true},
			"oldest":      {Attr: "year"},
			"earliest":    {Attr: "year"},
		},
	}
}

// Clothing covers apparel ads.
func Clothing() *Schema {
	return &Schema{
		Domain: "clothing",
		Table:  "clothing_ads",
		Attrs: []Attribute{
			{Name: "brand", Type: TypeI, Values: []string{
				"nike", "adidas", "levis", "gap", "zara", "gucci",
				"prada", "uniqlo", "patagonia", "columbia",
			}},
			{Name: "item", Type: TypeI, Values: []string{
				"jacket", "jeans", "dress", "shirt", "sweater", "coat",
				"shoes", "boots", "skirt", "hoodie",
			}},
			{Name: "color", Type: TypeII, Values: []string{
				"red", "blue", "black", "white", "grey", "green",
				"brown", "pink", "navy", "beige",
			}},
			{Name: "size", Type: TypeII, Values: []string{
				"small", "medium", "large", "extra large",
			}},
			{Name: "gender", Type: TypeII, Values: []string{
				"mens", "womens", "unisex", "kids",
			}},
			{Name: "material", Type: TypeII, Values: []string{
				"cotton", "wool", "leather", "denim", "polyester", "silk",
			}},
			{Name: "price", Type: TypeIII, Min: 5, Max: 3000,
				Unit: []string{"$", "usd", "dollar", "dollars", "bucks"}},
		},
		SuperlativeAttr: map[string]Superlative{
			"cheapest":    {Attr: "price"},
			"inexpensive": {Attr: "price"},
		},
	}
}

// CSJobs covers computer-science job postings; "Salary" is the
// paper's sample Type III attribute in the Jobs domain.
func CSJobs() *Schema {
	return &Schema{
		Domain: "csjobs",
		Table:  "csjob_ads",
		Attrs: []Attribute{
			{Name: "title", Type: TypeI, Values: []string{
				"software engineer", "web developer", "database administrator",
				"systems analyst", "network engineer", "data scientist",
				"qa engineer", "security analyst", "devops engineer",
				"mobile developer",
			}},
			{Name: "language", Type: TypeII, Values: []string{
				"java", "python", "c++", "c", "javascript", "sql", "go",
				"ruby", "php", "perl",
			}},
			{Name: "level", Type: TypeII, Values: []string{
				"junior", "senior", "lead", "intern", "principal",
			}},
			{Name: "schedule", Type: TypeII, Values: []string{
				"full time", "part time", "contract", "remote",
			}},
			{Name: "salary", Type: TypeIII, Min: 20000, Max: 250000,
				Unit: []string{"$", "usd", "dollar", "dollars"}},
			{Name: "experience", Type: TypeIII, Min: 0, Max: 15,
				Unit: []string{"years", "year", "yrs"}},
		},
		SuperlativeAttr: map[string]Superlative{
			"highest": {Attr: "salary", Descending: true},
			"lowest":  {Attr: "salary"},
		},
	}
}

// Furniture covers household furniture ads.
func Furniture() *Schema {
	return &Schema{
		Domain: "furniture",
		Table:  "furniture_ads",
		Attrs: []Attribute{
			{Name: "piece", Type: TypeI, Values: []string{
				"sofa", "couch", "table", "desk", "chair", "bed",
				"dresser", "bookshelf", "cabinet", "wardrobe", "recliner",
			}},
			{Name: "material", Type: TypeII, Values: []string{
				"oak", "pine", "walnut", "metal", "glass", "leather",
				"fabric", "plastic", "bamboo",
			}},
			{Name: "color", Type: TypeII, Values: []string{
				"brown", "black", "white", "grey", "beige", "cherry",
				"natural",
			}},
			{Name: "condition", Type: TypeII, Values: []string{
				"new", "used", "refurbished", "antique",
			}},
			{Name: "price", Type: TypeIII, Min: 10, Max: 8000,
				Unit: []string{"$", "usd", "dollar", "dollars", "bucks"}},
			{Name: "width", Type: TypeIII, Min: 10, Max: 120,
				Unit: []string{"inches", "inch", "in"}},
		},
		SuperlativeAttr: map[string]Superlative{
			"cheapest":    {Attr: "price"},
			"inexpensive": {Attr: "price"},
			"widest":      {Attr: "width", Descending: true},
		},
	}
}

// FoodCoupons covers restaurant and grocery coupon ads.
func FoodCoupons() *Schema {
	return &Schema{
		Domain: "foodcoupons",
		Table:  "foodcoupon_ads",
		Attrs: []Attribute{
			{Name: "vendor", Type: TypeI, Values: []string{
				"subway", "dominos", "chipotle", "wendys", "kroger",
				"safeway", "olive garden", "dennys", "papa johns",
				"pizza hut",
			}},
			{Name: "cuisine", Type: TypeII, Values: []string{
				"pizza", "sandwich", "mexican", "italian", "burger",
				"grocery", "breakfast", "chicken",
			}},
			{Name: "coupon", Type: TypeII, Values: []string{
				"buy one get one", "free delivery", "percent off",
				"dollar off", "free item",
			}},
			{Name: "discount", Type: TypeIII, Min: 5, Max: 75,
				Unit: []string{"percent", "%"}},
			{Name: "minimum", Type: TypeIII, Min: 0, Max: 100,
				Unit: []string{"$", "usd", "dollar", "dollars"}},
		},
		SuperlativeAttr: map[string]Superlative{
			"biggest": {Attr: "discount", Descending: true},
			"largest": {Attr: "discount", Descending: true},
		},
	}
}

// Instruments covers musical-instrument ads.
func Instruments() *Schema {
	return &Schema{
		Domain: "instruments",
		Table:  "instrument_ads",
		Attrs: []Attribute{
			{Name: "brand", Type: TypeI, Values: []string{
				"fender", "gibson", "yamaha", "roland", "steinway",
				"pearl", "ibanez", "casio", "selmer", "martin",
			}},
			{Name: "instrument", Type: TypeI, Values: []string{
				"guitar", "piano", "drums", "violin", "saxophone",
				"keyboard", "bass", "trumpet", "flute", "cello",
			}},
			{Name: "condition", Type: TypeII, Values: []string{
				"new", "used", "vintage", "refurbished",
			}},
			{Name: "finish", Type: TypeII, Values: []string{
				"sunburst", "black", "white", "natural", "red", "blue",
			}},
			{Name: "kind", Type: TypeII, Values: []string{
				"acoustic", "electric", "digital", "upright",
			}},
			{Name: "price", Type: TypeIII, Min: 20, Max: 50000,
				Unit: []string{"$", "usd", "dollar", "dollars", "bucks"}},
			{Name: "year", Type: TypeIII, Min: 1950, Max: 2011},
		},
		SuperlativeAttr: map[string]Superlative{
			"cheapest":    {Attr: "price"},
			"inexpensive": {Attr: "price"},
			"newest":      {Attr: "year", Descending: true},
			"oldest":      {Attr: "year"},
		},
	}
}

// Jewellery covers jewellery ads.
func Jewellery() *Schema {
	return &Schema{
		Domain: "jewellery",
		Table:  "jewellery_ads",
		Attrs: []Attribute{
			{Name: "piece", Type: TypeI, Values: []string{
				"ring", "necklace", "bracelet", "earrings", "watch",
				"pendant", "brooch", "anklet",
			}},
			{Name: "metal", Type: TypeII, Values: []string{
				"gold", "silver", "platinum", "titanium", "rose gold",
				"white gold", "stainless steel",
			}},
			{Name: "stone", Type: TypeII, Values: []string{
				"diamond", "ruby", "sapphire", "emerald", "pearl",
				"opal", "amethyst", "topaz",
			}},
			{Name: "gender", Type: TypeII, Values: []string{
				"mens", "womens", "unisex",
			}},
			{Name: "price", Type: TypeIII, Min: 20, Max: 60000,
				Unit: []string{"$", "usd", "dollar", "dollars", "bucks"}},
			{Name: "carat", Type: TypeIII, Min: 0.1, Max: 10,
				Unit: []string{"carat", "carats", "ct"}},
		},
		SuperlativeAttr: map[string]Superlative{
			"cheapest":    {Attr: "price"},
			"inexpensive": {Attr: "price"},
			"biggest":     {Attr: "carat", Descending: true},
			"largest":     {Attr: "carat", Descending: true},
		},
	}
}
