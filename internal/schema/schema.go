// Package schema defines the relational schemas of the ads domains:
// attribute names, the Type I/II/III classification of Sec. 4.1.1, and
// the valid value ranges that drive incomplete-question repair
// (Sec. 4.2.2) and Num_Sim normalization (Eq. 4).
package schema

import "fmt"

// AttrType classifies an attribute per Sec. 4.1.1 of the paper.
type AttrType int

const (
	// TypeI attributes identify the product or service (primary-indexed
	// fields), e.g. Make and Model in the Cars domain.
	TypeI AttrType = iota + 1
	// TypeII attributes describe properties of the product
	// (secondary-indexed fields), e.g. Color, Transmission.
	TypeII
	// TypeIII attributes carry quantitative values, e.g. Price, Year.
	TypeIII
)

// String implements fmt.Stringer.
func (t AttrType) String() string {
	switch t {
	case TypeI:
		return "Type I"
	case TypeII:
		return "Type II"
	case TypeIII:
		return "Type III"
	}
	return fmt.Sprintf("AttrType(%d)", int(t))
}

// Attribute describes one column of an ads relation.
type Attribute struct {
	// Name is the column name, e.g. "make", "price".
	Name string
	// Type is the paper's Type I/II/III classification.
	Type AttrType
	// Min and Max bound the valid range of a Type III attribute. For
	// Types I/II they are zero. The range is the paper's
	// Attribute_Value_Range used both to decide whether an unanchored
	// numeric value can belong to this attribute (Sec. 4.2.2) and to
	// normalize Num_Sim (Eq. 4).
	Min, Max float64
	// Unit lists alternate unit keywords that identify this attribute
	// when they appear next to a number ("$", "usd", "dollars" for
	// price; "miles", "mi" for mileage). Units are themselves Type III
	// attribute values per Sec. 4.1.1.
	Unit []string
	// Values enumerates the valid domain values of a Type I/II
	// attribute. Used to build the tagging trie and to detect
	// mutually-exclusive values (two values of the same attribute).
	Values []string
}

// Range returns the width of the attribute's valid range.
func (a Attribute) Range() float64 { return a.Max - a.Min }

// InRange reports whether v lies in the attribute's valid range.
func (a Attribute) InRange(v float64) bool { return v >= a.Min && v <= a.Max }

// Schema is the relational schema of one ads domain.
type Schema struct {
	// Domain is the ads domain name, e.g. "cars".
	Domain string
	// Table is the backing relation name, e.g. "car_ads".
	Table string
	// Attrs lists the attributes in declaration order. Type I
	// attributes come first (primary index), then Type II, then
	// Type III, mirroring the evaluation order of Sec. 4.3.
	Attrs []Attribute
	// SuperlativeAttr maps complete-superlative keywords to the
	// attribute and direction they group by (Table 1: "cheapest" →
	// price ASC, "newest" → year DESC).
	SuperlativeAttr map[string]Superlative
}

// Superlative describes how a complete superlative keyword resolves in
// this domain.
type Superlative struct {
	// Attr is the Type III attribute the superlative ranks by.
	Attr string
	// Descending is true when the superlative wants the maximum
	// ("newest"), false for the minimum ("cheapest", "oldest").
	Descending bool
}

// Attr returns the attribute named name and whether it exists.
func (s *Schema) Attr(name string) (Attribute, bool) {
	for _, a := range s.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// AttrsOfType returns the attributes with the given type, in order.
func (s *Schema) AttrsOfType(t AttrType) []Attribute {
	var out []Attribute
	for _, a := range s.Attrs {
		if a.Type == t {
			out = append(out, a)
		}
	}
	return out
}

// TypeOf returns the AttrType of the named attribute, or 0 when the
// attribute does not exist.
func (s *Schema) TypeOf(name string) AttrType {
	a, ok := s.Attr(name)
	if !ok {
		return 0
	}
	return a.Type
}

// NumericAttrs returns the Type III attributes of the schema.
func (s *Schema) NumericAttrs() []Attribute { return s.AttrsOfType(TypeIII) }

// CandidatesFor returns the Type III attributes whose valid range
// contains v. This is the "best guess" set of Sec. 4.2.2: an
// unanchored numeric value is treated as a potential value of every
// numeric attribute whose range admits it.
func (s *Schema) CandidatesFor(v float64) []Attribute {
	var out []Attribute
	for _, a := range s.NumericAttrs() {
		if a.InRange(v) {
			out = append(out, a)
		}
	}
	return out
}

// AttrForUnit resolves a unit keyword ("dollars", "miles") to the
// Type III attribute it quantifies.
func (s *Schema) AttrForUnit(unit string) (Attribute, bool) {
	for _, a := range s.NumericAttrs() {
		for _, u := range a.Unit {
			if u == unit {
				return a, true
			}
		}
	}
	return Attribute{}, false
}

// Validate checks structural invariants: non-empty names, unique
// attribute names, at least one Type I attribute, positive ranges on
// Type III attributes, and superlatives referencing real attributes.
func (s *Schema) Validate() error {
	if s.Domain == "" || s.Table == "" {
		return fmt.Errorf("schema: domain and table must be non-empty")
	}
	seen := map[string]bool{}
	typeICount := 0
	for _, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("schema %s: attribute with empty name", s.Domain)
		}
		if seen[a.Name] {
			return fmt.Errorf("schema %s: duplicate attribute %q", s.Domain, a.Name)
		}
		seen[a.Name] = true
		switch a.Type {
		case TypeI:
			typeICount++
			if len(a.Values) == 0 {
				return fmt.Errorf("schema %s: Type I attribute %q has no domain values", s.Domain, a.Name)
			}
		case TypeII:
			if len(a.Values) == 0 {
				return fmt.Errorf("schema %s: Type II attribute %q has no domain values", s.Domain, a.Name)
			}
		case TypeIII:
			if a.Max <= a.Min {
				return fmt.Errorf("schema %s: Type III attribute %q has empty range [%g,%g]", s.Domain, a.Name, a.Min, a.Max)
			}
		default:
			return fmt.Errorf("schema %s: attribute %q has invalid type %d", s.Domain, a.Name, int(a.Type))
		}
	}
	if typeICount == 0 {
		return fmt.Errorf("schema %s: no Type I attribute", s.Domain)
	}
	for kw, sup := range s.SuperlativeAttr {
		a, ok := s.Attr(sup.Attr)
		if !ok {
			return fmt.Errorf("schema %s: superlative %q references unknown attribute %q", s.Domain, kw, sup.Attr)
		}
		if a.Type != TypeIII {
			return fmt.Errorf("schema %s: superlative %q references non-numeric attribute %q", s.Domain, kw, sup.Attr)
		}
	}
	return nil
}
