//go:build !race

package failover_test

// raceScale stretches the test clocks when the race detector is on;
// plain builds run at full speed.
const raceScale = 1
