//go:build race

package failover_test

// raceScale stretches the test clocks under the race detector: its
// instrumentation slows the election loop enough that production
// lease/heartbeat ratios flap at the unscaled test cadence.
const raceScale = 4
