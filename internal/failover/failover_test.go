package failover_test

// Integration tests for self-healing replication: real peers (durable
// OpenPeer systems behind real webui HTTP servers) running real
// Agents, with only the clocks shortened. The acceptance bar is the
// one from the failover design: kill the leader mid-workload and every
// quorum-acked write must survive into the next term, with the healed
// set answering bit-identically to a system that never failed.

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/cqads"
	"repro/internal/adsgen"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/metrics/telemetry"
	"repro/internal/replica"
	"repro/internal/schema"
	"repro/internal/sqldb"
	"repro/internal/webui"
)

// Shortened clocks: lease and heartbeat scaled down ~10x so elections
// settle in hundreds of milliseconds instead of seconds. The ratios
// (lease >> heartbeat, poll ≈ 2x heartbeat) match production.
const (
	testHeartbeat = 30 * time.Millisecond * raceScale
	testLease     = 300 * time.Millisecond * raceScale
	convergeIn    = 30 * time.Second
)

// checkGoroutines records the goroutine count and fails the test if it
// has not returned to that level shortly after all other cleanups ran
// — every Agent loop, WAL tail poller and httptest server must
// actually wind down. Register it FIRST via t.Cleanup so it runs last.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}

// testOpts is the shared deterministic environment; every peer and the
// never-failed reference system must build identically.
func testOpts() cqads.Options {
	return cqads.Options{Seed: 7, AdsPerDomain: 90, TrainOnIngest: true, Dedup: true}
}

// blockingTransport simulates a network partition: destinations in the
// blocked set get a refused connection instead of a round trip.
type blockingTransport struct {
	mu      sync.Mutex
	blocked map[string]bool // host:port
	next    http.RoundTripper
}

func (bt *blockingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	bt.mu.Lock()
	cut := bt.blocked[req.URL.Host]
	bt.mu.Unlock()
	if cut {
		return nil, fmt.Errorf("partitioned away from %s", req.URL.Host)
	}
	return bt.next.RoundTrip(req)
}

func (bt *blockingTransport) set(hosts []string, cut bool) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	for _, h := range hosts {
		bt.blocked[h] = cut
	}
}

// peer is one replica-set member under test: a durable System, its
// election agent, and the webui server peers reach it through.
type peer struct {
	url   string
	host  string // listener host:port, reusable across restarts
	dir   string
	sys   *core.System
	agent *failover.Agent
	srv   *httptest.Server
	// transport is this peer's view of the network (outbound heartbeats,
	// votes, and WAL tails all go through it).
	transport *blockingTransport
}

type cluster struct {
	t    *testing.T
	urls []string

	mu      sync.Mutex
	peers   []*peer
	retired []*peer // replaced by restart; closed at cleanup
}

// startCluster listens on n loopback ports first — every agent needs
// the full membership before any peer starts — then boots each peer.
func startCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{t: t}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		c.urls = append(c.urls, "http://"+ln.Addr().String())
	}
	for i, ln := range listeners {
		c.peers = append(c.peers, c.bootPeer(c.urls[i], ln, t.TempDir()))
	}
	t.Cleanup(func() {
		// Stop under the lock: background readers poll peer liveness
		// through it until the moment they exit.
		c.mu.Lock()
		all := append(append([]*peer{}, c.peers...), c.retired...)
		for _, p := range all {
			p.stop()
		}
		c.mu.Unlock()
		for _, p := range all {
			p.sys.Close()
		}
	})
	return c
}

// bootPeer opens (or re-opens) the durable peer in dir and starts its
// agent and HTTP server on the given listener.
func (c *cluster) bootPeer(url string, ln net.Listener, dir string) *peer {
	c.t.Helper()
	opts := testOpts()
	opts.DataDir = dir
	opts.ReplicaSet = len(c.urls)
	opts.AckTimeout = 3 * time.Second
	sys, err := cqads.OpenPeer(opts)
	if err != nil {
		c.t.Fatal(err)
	}
	bt := &blockingTransport{blocked: map[string]bool{}, next: http.DefaultTransport}
	client := &http.Client{Transport: bt}
	agent, err := failover.New(failover.Config{
		Self:           url,
		Peers:          c.urls,
		Sys:            sys,
		Client:         client,
		HeartbeatEvery: testHeartbeat,
		LeaseTimeout:   testLease,
		Tail: replica.Config{
			Client:           client,
			PollWait:         2 * testHeartbeat,
			RetryInterval:    10 * time.Millisecond,
			MaxRetryInterval: testHeartbeat,
		},
	})
	if err != nil {
		c.t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(webui.NewServerWith(sys, webui.Options{Failover: agent}))
	srv.Listener.Close()
	srv.Listener = ln
	srv.Start()
	agent.Start()
	return &peer{
		url: url, host: ln.Addr().String(), dir: dir,
		sys: sys, agent: agent, srv: srv, transport: bt,
	}
}

// stop is a crash, not a shutdown: the HTTP server and agent die, the
// System is left un-checkpointed (its WAL is fsync'd per op, exactly
// what a SIGKILL leaves behind). The store handle stays open so
// concurrent readers finish safely; cleanup closes it.
func (p *peer) stop() {
	if p.srv == nil {
		return
	}
	p.srv.CloseClientConnections()
	p.srv.Close()
	p.srv = nil
	p.agent.Close()
}

// kill crashes the peer.
func (c *cluster) kill(p *peer) {
	c.t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	p.stop()
}

// restart reboots a killed peer on its original address with its
// original data directory — the rejoining node. The crashed peer's
// System object is retired, not closed: the directory has no lock, the
// old in-memory handle takes no further writes, and background readers
// may still be mid-query on it.
func (c *cluster) restart(p *peer) *peer {
	c.t.Helper()
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", p.host)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("rebinding %s: %v", p.host, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	np := c.bootPeer(p.url, ln, p.dir)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, q := range c.peers {
		if q == p {
			c.peers[i] = np
			c.retired = append(c.retired, p)
		}
	}
	return np
}

// live returns the peers whose servers are up.
func (c *cluster) live() []*peer {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*peer
	for _, p := range c.peers {
		if p.srv != nil {
			out = append(out, p)
		}
	}
	return out
}

// peerAt returns the current occupant of slot i and whether it is
// live, consistently under the cluster lock (restart swaps slots).
func (c *cluster) peerAt(i int) (*peer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.peers[i]
	return p, p.srv != nil
}

// waitLeader polls the live agents until exactly one leads and returns
// it.
func (c *cluster) waitLeader(exclude *peer) *peer {
	c.t.Helper()
	deadline := time.Now().Add(convergeIn)
	for time.Now().Before(deadline) {
		for _, p := range c.live() {
			if p == exclude {
				continue
			}
			if _, _, role := p.agent.Leader(); role == failover.RoleLeader {
				return p
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.t.Fatal("no leader elected")
	return nil
}

// waitConverged blocks until every live peer's applied cursor reaches
// the leader's log tip.
func (c *cluster) waitConverged(leader *peer) {
	c.t.Helper()
	deadline := time.Now().Add(convergeIn)
	for {
		target := leader.sys.Status().Persistence.Seq
		done := true
		for _, p := range c.live() {
			if p != leader && p.sys.AppliedSeq() < target {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			for _, p := range c.live() {
				c.t.Logf("%s: applied %d (leader tip %d)", p.url, p.sys.AppliedSeq(), target)
			}
			c.t.Fatal("replica set did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var failoverQuestions = []string{
	"Find Honda Accord blue less than 15,000 dollars",
	"cheapest honda",
	"blue car",
	"red or blue toyota under $9000",
	"gold necklace diamond",
}

// assertIdentical requires bit-identical Ask and AskBatch results
// between the reference system and a peer.
func assertIdentical(t *testing.T, label string, ref, got *core.System) {
	t.Helper()
	check := func(q string, p, f *core.Result, err1, err2 error) {
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %q: reference err %v, peer err %v", label, q, err1, err2)
		}
		if p.Domain != f.Domain || p.ExactCount != f.ExactCount || len(p.Answers) != len(f.Answers) {
			t.Fatalf("%s: %q: reference %s %d/%d, peer %s %d/%d", label, q,
				p.Domain, p.ExactCount, len(p.Answers), f.Domain, f.ExactCount, len(f.Answers))
		}
		for i := range p.Answers {
			x, y := p.Answers[i], f.Answers[i]
			if x.ID != y.ID || x.Exact != y.Exact || x.RankSim != y.RankSim || x.SimilarityUsed != y.SimilarityUsed {
				t.Fatalf("%s: %q: answer %d differs: reference {id %d sim %v %q}, peer {id %d sim %v %q}",
					label, q, i, x.ID, x.RankSim, x.SimilarityUsed, y.ID, y.RankSim, y.SimilarityUsed)
			}
		}
	}
	for _, q := range failoverQuestions {
		p, err1 := ref.Ask(q)
		f, err2 := got.Ask(q)
		check(q, p, f, err1, err2)
	}
	pb := ref.AskBatch(failoverQuestions, 4)
	fb := got.AskBatch(failoverQuestions, 4)
	for i := range pb {
		check(pb[i].Question, pb[i].Result, fb[i].Result, pb[i].Err, fb[i].Err)
	}
}

// mirrored ingests the same generated ads into the leader (at the
// given ack level) and the reference system, failing on any error, and
// returns the leader-assigned ids.
func mirrored(t *testing.T, leader, ref *core.System, domain string, seed int64, n int, ack core.AckLevel) []sqldb.RowID {
	t.Helper()
	gen := adsgen.NewGenerator(seed)
	var ids []sqldb.RowID
	for _, ad := range gen.Generate(schema.ByName(domain), n) {
		id, err := leader.InsertAdWithAck(domain, ad, ack)
		if err != nil {
			t.Fatalf("leader insert (%s): %v", domain, err)
		}
		rid, err := ref.InsertAd(domain, ad)
		if err != nil {
			t.Fatalf("reference insert: %v", err)
		}
		if id != rid {
			t.Fatalf("leader assigned id %d, reference %d — corpora diverged before the test began", id, rid)
		}
		ids = append(ids, id)
	}
	return ids
}

// reference opens the never-failed comparison system: an in-memory
// standalone with the same deterministic options.
func reference(t *testing.T) *core.System {
	t.Helper()
	ref, err := cqads.Open(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	return ref
}

// TestFailoverKillLeader is the acceptance harness: a 3-peer set
// elects a leader, takes quorum-acked writes, loses the leader to a
// crash, auto-promotes the freshest follower within the lease
// timeout, keeps every acked write, takes more quorum writes in the
// new term, and answers bit-identically to a system that never
// failed.
func TestFailoverKillLeader(t *testing.T) {
	checkGoroutines(t)
	c := startCluster(t, 3)
	ref := reference(t)

	leader := c.waitLeader(nil)
	mirrored(t, leader.sys, ref, "cars", 1001, 8, core.AckQuorum)
	mirrored(t, leader.sys, ref, "motorcycles", 1002, 5, core.AckQuorum)

	// Crash the leader. Every write above was quorum-acked, so a
	// majority of the survivors holds all of them, and the vote rule
	// (epoch, then sequence) forces the freshest survivor to win.
	electionsBefore := telemetry.Failover.Promotions.Load()
	c.kill(leader)
	start := time.Now()
	next := c.waitLeader(leader)
	t.Logf("new leader %s after %v", next.url, time.Since(start))
	if next == leader {
		t.Fatal("dead leader re-elected")
	}
	if got := telemetry.Failover.Promotions.Load(); got <= electionsBefore {
		t.Fatalf("promotions counter did not move (%d)", got)
	}
	if st := next.sys.Status().Replication; st.ReadOnly {
		t.Fatalf("new leader is read-only: %+v", st)
	}

	// No quorum-acked write may be lost: the new leader's log covers
	// them all, so its answers match the never-failed reference.
	assertIdentical(t, "new leader after crash", ref, next.sys)

	// The set still has 2 of 3 members — a majority — so quorum writes
	// keep working in the new term, and the surviving follower
	// converges bit-identically.
	mirrored(t, next.sys, ref, "cars", 2001, 4, core.AckQuorum)
	c.waitConverged(next)
	for _, p := range c.live() {
		assertIdentical(t, "survivor "+p.url, ref, p.sys)
	}

	// The HTTP leader view follows: every survivor's
	// GET /api/repl/leader names the new leader.
	deadline := time.Now().Add(convergeIn)
	for _, p := range c.live() {
		for {
			url, _, _ := p.agent.Leader()
			if url == next.url {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s still points at leader %q", p.url, url)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestPartitionFencing: a leader partitioned away from both followers
// keeps serving reads and ack=local writes (by design), fails
// ack=quorum writes, and on rejoining is fenced: its isolated writes
// are detected by log matching (409), dropped by the forced
// re-bootstrap, and the node converges bit-identically to the new
// term's history.
func TestPartitionFencing(t *testing.T) {
	checkGoroutines(t)
	c := startCluster(t, 3)
	ref := reference(t)

	old := c.waitLeader(nil)
	mirrored(t, old.sys, ref, "cars", 3001, 6, core.AckQuorum)
	c.waitConverged(old)

	// Partition: the leader can reach nobody and nobody can reach it.
	var others []*peer
	var otherHosts []string
	for _, p := range c.peers {
		if p != old {
			others = append(others, p)
			otherHosts = append(otherHosts, p.host)
		}
	}
	old.transport.set(otherHosts, true)
	for _, p := range others {
		p.transport.set([]string{old.host}, true)
	}
	// The cut blocks new requests, but the followers' in-flight WAL
	// long polls predate it and their responses still arrive; drain
	// them so the write below is genuinely unreplicated.
	time.Sleep(4 * testHeartbeat)

	// The isolated leader still takes ack=local writes — availability
	// over consistency, the documented contract — but cannot gather a
	// quorum.
	gen := adsgen.NewGenerator(4004)
	divergent, err := old.sys.InsertAdWithAck("cars", gen.Generate(schema.Cars(), 1)[0], core.AckLocal)
	if err != nil {
		t.Fatalf("ack=local on isolated leader: %v", err)
	}
	if _, err := old.sys.InsertAdWithAck("cars", gen.Generate(schema.Cars(), 1)[0], core.AckQuorum); !errors.Is(err, core.ErrQuorumUnavailable) {
		t.Fatalf("ack=quorum on isolated leader = %v, want ErrQuorumUnavailable", err)
	}

	// The majority side elects a new leader at a higher term and moves
	// on.
	next := c.waitLeader(old)
	mirrored(t, next.sys, ref, "jewellery", 5005, 5, core.AckQuorum)

	// Heal. The old leader hears the higher term, steps down, and its
	// diverged log forces a fenced stream (409) and a re-bootstrap.
	fencedBefore := telemetry.Failover.FencedStreams.Load()
	old.transport.set(otherHosts, false)
	for _, p := range others {
		p.transport.set([]string{old.host}, false)
	}
	c.waitConverged(next)

	if _, _, role := old.agent.Leader(); role == failover.RoleLeader {
		t.Fatal("old leader did not step down after the partition healed")
	}
	if got := telemetry.Failover.FencedStreams.Load(); got <= fencedBefore {
		t.Fatalf("fenced-streams counter did not move (%d): the diverged log was not detected", got)
	}
	// The isolated suffix is gone: the ad the old leader accepted at
	// ack=local during the partition was fenced away with it.
	tbl, ok := old.sys.DB().TableForDomain("cars")
	if !ok {
		t.Fatal("no cars table")
	}
	if tbl.Alive(divergent) {
		t.Fatalf("divergent ad %d survived the rejoin", divergent)
	}
	// And the rejoined node answers bit-identically to the reference
	// (which never saw the fenced write).
	assertIdentical(t, "rejoined old leader", ref, old.sys)
	if _, err := old.sys.InsertAd("cars", gen.Generate(schema.Cars(), 1)[0]); !errors.Is(err, core.ErrReadOnlyReplica) {
		t.Fatalf("rejoined old leader accepts writes: %v", err)
	}
}

// TestElectionUnderChurn kills the leader repeatedly while followers
// serve AskBatch continuously, restarting each victim so it rejoins as
// a follower. After the churn the whole set converges bit-identically
// to the reference.
func TestElectionUnderChurn(t *testing.T) {
	checkGoroutines(t)
	c := startCluster(t, 3)
	ref := reference(t)

	// Background readers: every live peer answers batches throughout
	// the churn; a read error under failover is a test failure.
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	readErr := make(chan error, 1)
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func(i int) {
			defer readers.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				p, ok := c.peerAt(i)
				if !ok {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				for _, br := range p.sys.AskBatch(failoverQuestions[:3], 3) {
					if br.Err != nil {
						select {
						case readErr <- fmt.Errorf("AskBatch on %s during churn: %w", p.url, br.Err):
						default:
						}
						return
					}
				}
				// Continuous but not saturating: leave the election
				// loops cycles to meet their deadlines.
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}

	seed := int64(7007)
	for round := 0; round < 3; round++ {
		leader := c.waitLeader(nil)
		mirrored(t, leader.sys, ref, "cars", seed, 3, core.AckQuorum)
		seed++
		c.kill(leader)
		next := c.waitLeader(leader)
		if next.url == leader.url {
			t.Fatalf("round %d: dead leader %s re-elected", round, leader.url)
		}
		c.restart(leader)
	}

	final := c.waitLeader(nil)
	mirrored(t, final.sys, ref, "motorcycles", seed, 2, core.AckQuorum)
	c.waitConverged(final)
	close(stopReads)
	readers.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
	for _, p := range c.live() {
		assertIdentical(t, "post-churn "+p.url, ref, p.sys)
	}
}
