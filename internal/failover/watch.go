package failover

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// LeaderView is the JSON body of GET /api/repl/leader: one node's
// current opinion of who leads its replica set. Role is an agent role
// (leader/follower/candidate) on nodes running failover, or a storage
// role (primary/promoted/follower/standalone) on nodes without an
// agent — either way, a node reporting a leading role IS the leader.
type LeaderView struct {
	LeaderURL string `json:"leader_url"`
	Epoch     uint64 `json:"epoch"`
	Role      string `json:"role"`
}

// leads reports whether a node answering with this view is itself the
// write target.
func (v LeaderView) leads() bool {
	switch v.Role {
	case RoleLeader, "primary", "promoted", "standalone":
		return true
	}
	return false
}

// DefaultProbeTimeout bounds one leader probe; a watcher asking a dead
// node must move to the next long before a router's caller notices.
const DefaultProbeTimeout = 2 * time.Second

// Watch resolves and caches the current leader of one replica set by
// asking its members GET /api/repl/leader. Routers consult it lazily:
// resolve once, send traffic to the cached leader, and on failure
// Invalidate and re-resolve — election results propagate exactly when
// they are needed, with no background polling.
type Watch struct {
	peers   []string
	client  *http.Client
	timeout time.Duration

	mu     sync.Mutex
	cached string
}

// NewWatch builds a watcher over the replica set's base URLs. A nil
// client uses a dedicated one with DefaultProbeTimeout per probe.
func NewWatch(peers []string, client *http.Client) *Watch {
	if client == nil {
		client = &http.Client{}
	}
	return &Watch{peers: peers, client: client, timeout: DefaultProbeTimeout}
}

// Peers returns the member URLs the watcher probes.
func (w *Watch) Peers() []string { return w.peers }

// Resolve returns the set's current leader URL, probing members only
// when no cached answer exists. The members' own reports win over
// hearsay: a node claiming a leading role is preferred (highest epoch
// first) over another node's leader_url hint, which may be one
// election stale.
func (w *Watch) Resolve(ctx context.Context) (string, error) {
	w.mu.Lock()
	if w.cached != "" {
		url := w.cached
		w.mu.Unlock()
		return url, nil
	}
	w.mu.Unlock()

	var (
		leader, hint           string
		leaderEpoch, hintEpoch uint64
		found                  bool
	)
	for _, peer := range w.peers {
		v, err := w.probe(ctx, peer)
		if err != nil {
			continue
		}
		switch {
		case v.leads() && (!found || v.Epoch > leaderEpoch):
			leader, leaderEpoch, found = peer, v.Epoch, true
		case v.LeaderURL != "" && v.Epoch >= hintEpoch:
			hint, hintEpoch = v.LeaderURL, v.Epoch
		}
	}
	if !found && hint != "" && hintEpoch >= leaderEpoch {
		leader, found = hint, true
	}
	if !found {
		return "", fmt.Errorf("failover: no reachable leader among %v", w.peers)
	}
	w.mu.Lock()
	w.cached = leader
	w.mu.Unlock()
	return leader, nil
}

// Invalidate drops the cached leader if it still names url, so the
// next Resolve re-probes. Scoping the drop to the failed URL keeps a
// concurrent caller's fresher answer intact.
func (w *Watch) Invalidate(url string) {
	w.mu.Lock()
	if w.cached == url {
		w.cached = ""
	}
	w.mu.Unlock()
}

// probe asks one member for its leader view.
func (w *Watch) probe(ctx context.Context, peer string) (LeaderView, error) {
	pctx, cancel := context.WithTimeout(ctx, w.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, peer+"/api/repl/leader", nil)
	if err != nil {
		return LeaderView{}, err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return LeaderView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return LeaderView{}, fmt.Errorf("failover: %s answered %s", peer, resp.Status)
	}
	var v LeaderView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return LeaderView{}, err
	}
	return v, nil
}
