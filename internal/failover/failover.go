// Package failover gives a replica set self-healing leadership: a
// lease-based election protocol layered on the WAL-shipping replication
// of internal/replica. Every node runs an Agent over its durable peer
// System (core.OpenPeer). The leader heartbeats the set; followers hold
// a jittered lease refreshed by accepted heartbeats and tail the
// leader's log. When the lease lapses — the leader crashed, hung, or
// was partitioned away — followers campaign: the freshest one (highest
// applied epoch, then highest applied sequence) collects a majority of
// votes, promotes itself at a higher epoch, and starts heartbeating.
// Deposed leaders learn the higher epoch from a rejected heartbeat (or
// the new leader's own heartbeat), demote back to followers, and
// re-attach a tail; if their log diverged while isolated, log matching
// answers 409 and they re-bootstrap from the new leader's snapshot.
//
// Safety comes from epochs, not clocks. A vote is granted only to a
// candidate whose (applied epoch, applied sequence) is at least the
// voter's own — epoch first, so a deposed primary that kept writing
// under its stale term can never outrank a follower that applied the
// new term's history, no matter how many sequence numbers it minted
// while isolated. Every quorum-acked write therefore lives on at least
// one node of any elected majority, and the election picks a node that
// has it. Writes acked at AckLocal only carry no such guarantee: an
// isolated leader keeps accepting them (it does NOT step down on lost
// quorum — reads and local-durability writes stay available), and they
// are fenced away when it rejoins. That asymmetry is the documented
// durability contract: ack=quorum survives any single failure,
// ack=local survives anything except electing a new leader while the
// old one was isolated.
package failover

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics/telemetry"
	"repro/internal/replica"
)

const (
	// DefaultHeartbeatEvery is the leader's heartbeat cadence.
	DefaultHeartbeatEvery = 250 * time.Millisecond
	// DefaultLeaseTimeout is the base follower lease: miss heartbeats
	// for this long (plus per-grant jitter) and the follower campaigns.
	// It must comfortably exceed the heartbeat cadence so one dropped
	// packet does not trigger an election.
	DefaultLeaseTimeout = 2 * time.Second
)

// Agent roles, surfaced by Leader and GET /api/repl/leader. They
// describe the election state machine, not the storage role (a Leader
// agent's System reports core.RolePrimary or core.RolePromoted).
const (
	RoleLeader    = "leader"
	RoleFollower  = "follower"
	RoleCandidate = "candidate"
)

// Heartbeat is the leader's lease-renewal message, POSTed to every
// peer's /api/repl/heartbeat each cadence tick.
type Heartbeat struct {
	// Epoch is the leader's term. A peer that has seen a higher term
	// rejects the heartbeat, telling the sender it was deposed.
	Epoch uint64 `json:"epoch"`
	// Leader is the sender's advertised base URL; accepting peers
	// re-point their WAL tails here.
	Leader string `json:"leader"`
	// Seq is the leader's last committed log sequence, letting
	// followers track lag between polls.
	Seq uint64 `json:"seq"`
}

// HeartbeatResponse acknowledges or fences a heartbeat.
type HeartbeatResponse struct {
	Ok bool `json:"ok"`
	// Epoch is the responder's current term — on rejection, the higher
	// term that fences the sender.
	Epoch uint64 `json:"epoch"`
}

// VoteRequest is a candidate's campaign message for one peer's vote.
type VoteRequest struct {
	// Epoch is the term the candidate is campaigning for — strictly
	// above every term it has seen.
	Epoch uint64 `json:"epoch"`
	// Candidate is the campaigner's advertised base URL.
	Candidate string `json:"candidate"`
	// AppliedSeq and AppliedEpoch are the candidate's log position.
	// Voters compare (AppliedEpoch, AppliedSeq) lexicographically
	// against their own — epoch FIRST: a stale primary's isolated
	// writes may give it the higher sequence, but they carry a fenced
	// term and must not win an election (they would take quorum-acked
	// writes down with them).
	AppliedSeq   uint64 `json:"applied_seq"`
	AppliedEpoch uint64 `json:"applied_epoch"`
}

// VoteResponse grants or denies a vote.
type VoteResponse struct {
	Granted bool `json:"granted"`
	// Epoch is the responder's current term, so a denied candidate
	// learns how far behind it is.
	Epoch uint64 `json:"epoch"`
}

// Config wires an Agent.
type Config struct {
	// Self is this node's advertised base URL — its identity in votes,
	// heartbeats, and quorum acks. Required.
	Self string
	// Peers are the replica set's advertised base URLs. Self may be
	// included (it is filtered out); the set size including self
	// defines the vote majority and should match core.Config.ReplicaSet
	// so write quorums and election quorums agree.
	Peers []string
	// Sys is the durable peer System (core.OpenPeer) the agent manages.
	// Required.
	Sys *core.System
	// Client issues heartbeat and vote requests; nil uses a dedicated
	// client (per-request timeouts come from contexts).
	Client *http.Client
	// HeartbeatEvery is the leader's heartbeat cadence; 0 means
	// DefaultHeartbeatEvery.
	HeartbeatEvery time.Duration
	// LeaseTimeout is the base follower lease; 0 means
	// DefaultLeaseTimeout. Each renewal is jittered to [T, 1.5T) so
	// followers' election timers never fire in lockstep.
	LeaseTimeout time.Duration
	// Tail is the template for the WAL tail the agent runs while
	// following (PollWait, RetryInterval, ...). Primary and Node are
	// overwritten with the current leader and Self; Bootstrap is
	// unnecessary (durable peers re-bootstrap in place via
	// ResetToSnapshot).
	Tail replica.Config
}

// Agent is one node's failover state machine. It owns the node's WAL
// tail (attaching one per leadership view) and drives promote/demote on
// the underlying System; webui exposes its HandleHeartbeat/HandleVote
// over HTTP and its Leader view at GET /api/repl/leader.
type Agent struct {
	cfg   Config
	peers []string // excluding Self

	mu    sync.Mutex
	role  string // cqads:guarded-by mu
	epoch uint64 // cqads:guarded-by mu (term of the last accepted leader view)
	// votedEpoch is the highest term this node has voted in (for itself
	// when campaigning, or for a peer). One vote per term is what makes
	// a majority exclusive.
	votedEpoch  uint64            // cqads:guarded-by mu
	leader      string            // cqads:guarded-by mu (current leader's URL; "" when unknown)
	leaseExpiry time.Time         // cqads:guarded-by mu
	tail        *replica.Follower // cqads:guarded-by mu

	cancel context.CancelFunc
	done   chan struct{}
	closed bool
}

// New builds an Agent in the follower role with a full (jittered)
// lease, so an existing leader has one lease period to announce itself
// before anyone campaigns. Call Start to begin participating.
func New(cfg Config) (*Agent, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("failover: Config.Self is required")
	}
	if cfg.Sys == nil {
		return nil, fmt.Errorf("failover: Config.Sys is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	a := &Agent{
		cfg:  cfg,
		role: RoleFollower,
		// The term the local log recovered with: elections start above
		// whatever history this node carries.
		epoch: cfg.Sys.Epoch(),
		done:  make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if p != "" && p != cfg.Self {
			a.peers = append(a.peers, p)
		}
	}
	a.leaseExpiry = time.Now().Add(a.jitteredLease())
	return a, nil
}

// jitteredLease is one lease period with per-grant jitter in
// [T, 1.5T): randomized timers are what breaks symmetric election ties.
func (a *Agent) jitteredLease() time.Duration {
	t := a.cfg.LeaseTimeout
	return t + time.Duration(rand.Int63n(int64(t)/2+1))
}

// setSize is the voting membership including self.
func (a *Agent) setSize() int { return len(a.peers) + 1 }

// Start launches the election loop. Repeated calls are no-ops.
func (a *Agent) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cancel != nil || a.closed {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	a.cancel = cancel
	go a.run(ctx)
}

// Close stops the loop and the tail. The System keeps its current role:
// closing a leader's agent does not demote it.
func (a *Agent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	cancel, tail := a.cancel, a.tail
	a.tail = nil
	a.mu.Unlock()
	if cancel != nil {
		cancel()
		<-a.done
	} else {
		close(a.done)
	}
	if tail != nil {
		tail.Close()
	}
}

// Leader reports the agent's current view: the leader's URL (empty when
// unknown — between a lease lapse and the next election), the term, and
// this agent's role. GET /api/repl/leader serves exactly this.
func (a *Agent) Leader() (url string, epoch uint64, role string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.leader, a.epoch, a.role
}

// run is the cadence loop: leaders heartbeat every tick, followers and
// candidates check their lease and campaign when it lapses.
func (a *Agent) run(ctx context.Context) {
	defer close(a.done)
	ticker := time.NewTicker(a.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		a.mu.Lock()
		role, expiry := a.role, a.leaseExpiry
		a.mu.Unlock()
		switch {
		case role == RoleLeader:
			a.heartbeatPeers(ctx)
		case time.Now().After(expiry):
			if a.campaign(ctx) {
				// Announce immediately: peers' leases are already
				// lapsing; the sooner they hear the new term, the fewer
				// competing candidacies.
				a.heartbeatPeers(ctx)
			}
		}
	}
}

// leaderSeq is the log position a leader advertises in heartbeats. The
// replication status special-cases a promoted durable peer to report
// the store tip (its applied cursor stopped moving at promotion).
func (a *Agent) leaderSeq() uint64 {
	return a.cfg.Sys.Status().Replication.AppliedSeq
}

// heartbeatPeers sends one round of lease renewals. A rejection
// carrying a higher term means this leader was deposed while it wasn't
// looking: demote and wait for the new leader's announcement.
func (a *Agent) heartbeatPeers(ctx context.Context) {
	a.mu.Lock()
	if a.role != RoleLeader {
		a.mu.Unlock()
		return
	}
	hb := Heartbeat{Epoch: a.epoch, Leader: a.cfg.Self, Seq: a.leaderSeq()}
	peers := a.peers
	a.mu.Unlock()

	telemetry.Failover.HeartbeatsSent.Add(int64(len(peers)))
	var fenced struct {
		sync.Mutex
		epoch uint64
	}
	rctx, rcancel := context.WithTimeout(ctx, a.cfg.HeartbeatEvery*2)
	defer rcancel()
	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			var resp HeartbeatResponse
			err := a.postJSON(rctx, peer+"/api/repl/heartbeat", hb, &resp)
			if err == nil && !resp.Ok && resp.Epoch > hb.Epoch {
				fenced.Lock()
				if resp.Epoch > fenced.epoch {
					fenced.epoch = resp.Epoch
				}
				fenced.Unlock()
			}
			// Unreachable peers are simply missed renewals — an
			// isolated leader deliberately keeps serving (reads and
			// ack=local writes); ack=quorum writes fail on their own.
		}(peer)
	}
	wg.Wait()
	if fenced.epoch > 0 {
		a.stepDown(fenced.epoch)
	}
}

// stepDown demotes a deposed leader: fence the System at the higher
// term, flip read-only, and hold a full lease open for the new leader's
// heartbeat (its announcement carries the tail target).
func (a *Agent) stepDown(epoch uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.role != RoleLeader || epoch <= a.epoch {
		return
	}
	telemetry.Failover.StepDowns.Add(1)
	log.Printf("failover: %s deposed at epoch %d by epoch %d; demoting", a.cfg.Self, a.epoch, epoch)
	if err := a.cfg.Sys.Demote(epoch); err != nil {
		log.Printf("failover: demoting %s: %v", a.cfg.Self, err)
	}
	a.role = RoleFollower
	a.epoch = epoch
	a.leader = ""
	a.leaseExpiry = time.Now().Add(a.jitteredLease())
}

// campaign runs one election at a term above everything this node has
// seen, reporting whether it won. Called with a lapsed lease.
func (a *Agent) campaign(ctx context.Context) (won bool) {
	a.mu.Lock()
	if a.role == RoleLeader || a.closed || time.Now().Before(a.leaseExpiry) {
		a.mu.Unlock()
		return false
	}
	epoch := max(a.epoch, a.votedEpoch, a.cfg.Sys.Epoch()) + 1
	a.votedEpoch = epoch // our own vote, exclusive for this term
	a.role = RoleCandidate
	// Our lease lapsed: stop vouching for the old leader. Without this
	// a failed campaign leaves the stale leader pointer armed behind a
	// re-armed lease, and rival ex-followers deny each other's votes
	// (the disruption guard) for round after round.
	a.leader = ""
	req := VoteRequest{
		Epoch:        epoch,
		Candidate:    a.cfg.Self,
		AppliedSeq:   a.cfg.Sys.AppliedSeq(),
		AppliedEpoch: a.cfg.Sys.AppliedEpoch(),
	}
	// Re-arm the timer now: a lost election waits a fresh jittered
	// lease before retrying, de-synchronizing rival candidates.
	a.leaseExpiry = time.Now().Add(a.jitteredLease())
	peers := a.peers
	a.mu.Unlock()

	telemetry.Failover.Elections.Add(1)
	var tally struct {
		sync.Mutex
		grants   int
		maxEpoch uint64
	}
	tally.grants = 1 // self
	rctx, rcancel := context.WithTimeout(ctx, a.cfg.LeaseTimeout/2)
	defer rcancel()
	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			var resp VoteResponse
			if err := a.postJSON(rctx, peer+"/api/repl/vote", req, &resp); err != nil {
				return
			}
			tally.Lock()
			defer tally.Unlock()
			if resp.Granted {
				tally.grants++
			}
			if resp.Epoch > tally.maxEpoch {
				tally.maxEpoch = resp.Epoch
			}
		}(peer)
	}
	wg.Wait()

	a.mu.Lock()
	defer a.mu.Unlock()
	if a.role != RoleCandidate || a.epoch >= epoch {
		return false // a leader announced itself mid-campaign
	}
	if tally.maxEpoch > epoch {
		// Someone is already past this term; never campaign below it.
		a.votedEpoch = tally.maxEpoch
		a.role = RoleFollower
		return false
	}
	if 2*tally.grants <= a.setSize() {
		a.role = RoleFollower // lost; retry after the re-armed jittered lease
		return false
	}
	// Won. Stop following before flipping writable so no late shipped
	// frame can race a direct write, then promote at the new term.
	if a.tail != nil {
		a.tail.Close()
		a.tail = nil
	}
	if err := a.cfg.Sys.PromoteTo(epoch); err != nil {
		log.Printf("failover: %s won epoch %d but promote failed: %v", a.cfg.Self, epoch, err)
		a.role = RoleFollower
		return false
	}
	telemetry.Failover.Promotions.Add(1)
	log.Printf("failover: %s promoted to leader at epoch %d (%d/%d votes)",
		a.cfg.Self, epoch, tally.grants, a.setSize())
	a.role = RoleLeader
	a.epoch = epoch
	a.leader = a.cfg.Self
	return true
}

// HandleHeartbeat is the receiving half of the lease protocol, wired to
// POST /api/repl/heartbeat. Accepting a heartbeat renews the lease,
// adopts the sender as leader (demoting ourselves if we thought WE
// led), and re-points the WAL tail; a heartbeat below our term is the
// deposed primary knocking — reject it with the term that fences it.
func (a *Agent) HandleHeartbeat(hb Heartbeat) HeartbeatResponse {
	a.mu.Lock()
	defer a.mu.Unlock()
	if hb.Epoch < a.epoch || (hb.Epoch == a.epoch && a.role == RoleLeader && hb.Leader != a.cfg.Self) {
		// Same-term rival leaders cannot both hold majorities; the
		// equal-epoch arm only fires on anomalies (e.g. a replayed
		// message) and fencing is the safe answer.
		telemetry.Failover.HeartbeatsRejected.Add(1)
		return HeartbeatResponse{Ok: false, Epoch: a.epoch}
	}
	if a.role == RoleLeader {
		telemetry.Failover.StepDowns.Add(1)
		log.Printf("failover: %s deposed at epoch %d by %s at epoch %d; demoting",
			a.cfg.Self, a.epoch, hb.Leader, hb.Epoch)
		if err := a.cfg.Sys.Demote(hb.Epoch); err != nil {
			log.Printf("failover: demoting %s: %v", a.cfg.Self, err)
		}
	}
	a.role = RoleFollower
	a.epoch = hb.Epoch
	a.leader = hb.Leader
	a.leaseExpiry = time.Now().Add(a.jitteredLease())
	// Raise the stream fence so a deposed primary's late WAL responses
	// are rejected, and record the leader's tip for lag accounting.
	a.cfg.Sys.NoteEpoch(hb.Epoch)
	a.cfg.Sys.NotePrimarySeq(hb.Seq)
	a.retargetTailLocked()
	return HeartbeatResponse{Ok: true, Epoch: a.epoch}
}

// retargetTailLocked points the WAL tail at the current leader,
// attaching one if this is the first leader this view has seen. Called
// with a.mu held.
//
// cqads:requires-lock mu
func (a *Agent) retargetTailLocked() {
	if a.leader == "" || a.leader == a.cfg.Self || a.closed {
		return
	}
	if a.tail != nil {
		if a.tail.Primary() != a.leader {
			a.tail.SetPrimary(a.leader)
		}
		return
	}
	cfg := a.cfg.Tail
	cfg.Primary = a.leader
	cfg.Node = a.cfg.Self
	tail, err := replica.Attach(a.cfg.Sys, cfg)
	if err != nil {
		log.Printf("failover: attaching tail to %s: %v", a.leader, err)
		return
	}
	a.tail = tail
	tail.Start()
}

// HandleVote is the voting booth, wired to POST /api/repl/vote. The
// grant conditions, in order: the term must be new to us (one vote per
// term), the candidate's log must be at least as fresh as ours — epoch
// before sequence — and our own lease must have lapsed (a candidate
// campaigning while we still hear a live leader is a disruption, not a
// failover).
func (a *Agent) HandleVote(req VoteRequest) VoteResponse {
	a.mu.Lock()
	defer a.mu.Unlock()
	deny := VoteResponse{Granted: false, Epoch: max(a.epoch, a.votedEpoch)}
	if req.Epoch <= a.epoch || req.Epoch <= a.votedEpoch {
		return deny
	}
	ourEpoch, ourSeq := a.cfg.Sys.AppliedEpoch(), a.cfg.Sys.AppliedSeq()
	if req.AppliedEpoch < ourEpoch ||
		(req.AppliedEpoch == ourEpoch && req.AppliedSeq < ourSeq) {
		return deny // we hold history the candidate lacks
	}
	if a.role == RoleLeader || (a.leader != "" && time.Now().Before(a.leaseExpiry)) {
		return deny // a live leader exists as far as we can tell
	}
	a.votedEpoch = req.Epoch
	// Granting re-arms our own timer: give the winner a full lease to
	// announce itself before we campaign against it.
	a.leaseExpiry = time.Now().Add(a.jitteredLease())
	telemetry.Failover.VotesGranted.Add(1)
	return VoteResponse{Granted: true, Epoch: req.Epoch}
}

// postJSON is one JSON round trip. Non-2xx responses are not errors
// here: protocol rejections (409) carry meaning in their decoded body.
func (a *Agent) postJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}
