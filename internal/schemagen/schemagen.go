// Package schemagen implements the second future-work item of Sec. 6:
// "automated database schema generation". Given a sample of raw ads
// records (attribute → value maps, as the paper's extraction tool [17]
// produces), it infers a schema.Schema: which attributes are
// quantitative (Type III) with what valid ranges, and which
// categorical attributes are the product identifiers (Type I) versus
// descriptive properties (Type II).
//
// The classification heuristics follow the paper's definitions
// (Sec. 4.1.1):
//
//   - Type III: "quantitative values" — attributes whose values are
//     overwhelmingly numeric.
//   - Type I: "the unique identifier of PS ... required values" —
//     categorical attributes that are (a) almost never missing and
//     (b) high-cardinality relative to the other categorical
//     attributes (identifiers distinguish products; properties like
//     color or transmission repeat from a small value pool).
//   - Type II: the remaining categorical attributes.
package schemagen

import (
	"fmt"
	"sort"

	"repro/internal/schema"
	"repro/internal/sqldb"
)

// Options tunes inference.
type Options struct {
	// NumericThreshold is the fraction of non-null values that must be
	// numeric for an attribute to be Type III (default 0.9).
	NumericThreshold float64
	// RequiredCoverage is the minimum non-null fraction for a Type I
	// candidate (identifiers are "required values", default 0.95).
	RequiredCoverage float64
	// MaxTypeI caps how many attributes are promoted to Type I
	// (default 2, matching Make+Model-style identifier pairs).
	MaxTypeI int
	// RangeMargin widens inferred Type III ranges by this fraction of
	// the observed span on each side (default 0.05), since a sample
	// rarely contains the true extremes.
	RangeMargin float64
}

// DefaultOptions returns the defaults documented on Options.
func DefaultOptions() Options {
	return Options{
		NumericThreshold: 0.9,
		RequiredCoverage: 0.95,
		MaxTypeI:         2,
		RangeMargin:      0.05,
	}
}

// attrStats accumulates per-attribute observations.
type attrStats struct {
	name     string
	total    int // records seen
	present  int // non-null occurrences
	numeric  int // numeric occurrences
	min, max float64
	values   map[string]int // distinct categorical values with counts
}

// Infer derives a schema from sample records for the named domain.
// records must share an attribute vocabulary; at least one record and
// one categorical attribute are required (a schema needs a Type I).
func Infer(domain, table string, records []map[string]sqldb.Value, opts Options) (*schema.Schema, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("schemagen: no sample records")
	}
	if opts.NumericThreshold == 0 {
		opts = DefaultOptions()
	}
	stats := map[string]*attrStats{}
	order := []string{}
	for _, rec := range records {
		for name := range rec {
			if _, ok := stats[name]; !ok {
				stats[name] = &attrStats{name: name, values: map[string]int{}}
				order = append(order, name)
			}
		}
	}
	sort.Strings(order)
	for _, rec := range records {
		for _, name := range order {
			st := stats[name]
			st.total++
			v, ok := rec[name]
			if !ok || v.IsNull() {
				continue
			}
			st.present++
			if v.IsNumber() {
				n := v.Num()
				if st.numeric == 0 || n < st.min {
					st.min = n
				}
				if st.numeric == 0 || n > st.max {
					st.max = n
				}
				st.numeric++
			} else {
				st.values[v.Str()]++
			}
		}
	}

	// Phase 1: split numeric vs categorical.
	var numeric, categorical []*attrStats
	for _, name := range order {
		st := stats[name]
		if st.present == 0 {
			continue // attribute never populated: drop
		}
		if float64(st.numeric)/float64(st.present) >= opts.NumericThreshold {
			numeric = append(numeric, st)
		} else {
			categorical = append(categorical, st)
		}
	}
	if len(categorical) == 0 {
		return nil, fmt.Errorf("schemagen: no categorical attribute to serve as Type I")
	}

	// Phase 2: rank categorical attributes for Type I: required
	// coverage first, then cardinality (identifiers draw from larger
	// value pools than properties).
	ranked := append([]*attrStats{}, categorical...)
	sort.SliceStable(ranked, func(i, j int) bool {
		ci := float64(ranked[i].present) / float64(ranked[i].total)
		cj := float64(ranked[j].present) / float64(ranked[j].total)
		qi, qj := ci >= opts.RequiredCoverage, cj >= opts.RequiredCoverage
		if qi != qj {
			return qi
		}
		if len(ranked[i].values) != len(ranked[j].values) {
			return len(ranked[i].values) > len(ranked[j].values)
		}
		return ranked[i].name < ranked[j].name
	})
	typeI := map[string]bool{}
	for i := 0; i < len(ranked) && i < opts.MaxTypeI; i++ {
		if float64(ranked[i].present)/float64(ranked[i].total) >= opts.RequiredCoverage {
			typeI[ranked[i].name] = true
		}
	}
	if len(typeI) == 0 {
		// Fall back to the best-ranked categorical attribute so the
		// schema always has an identifier.
		typeI[ranked[0].name] = true
	}

	// Phase 3: assemble the schema in the conventional order
	// (Type I, Type II, Type III) with deterministic value lists.
	out := &schema.Schema{Domain: domain, Table: table}
	appendCat := func(st *attrStats, t schema.AttrType) {
		vals := make([]string, 0, len(st.values))
		for v := range st.values {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		out.Attrs = append(out.Attrs, schema.Attribute{Name: st.name, Type: t, Values: vals})
	}
	for _, st := range categorical {
		if typeI[st.name] {
			appendCat(st, schema.TypeI)
		}
	}
	for _, st := range categorical {
		if !typeI[st.name] {
			appendCat(st, schema.TypeII)
		}
	}
	for _, st := range numeric {
		span := st.max - st.min
		if span == 0 {
			span = 1
		}
		margin := span * opts.RangeMargin
		out.Attrs = append(out.Attrs, schema.Attribute{
			Name: st.name,
			Type: schema.TypeIII,
			Min:  st.min - margin,
			Max:  st.max + margin,
		})
	}
	attachDefaultSuperlatives(out)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("schemagen: inferred schema invalid: %w", err)
	}
	return out, nil
}

// attachDefaultSuperlatives wires the conventional superlative
// keywords for well-known quantitative attribute names, so questions
// like "cheapest ..." work against inferred schemas without manual
// identifier-table edits (partial superlatives such as "lowest price"
// always work, since they resolve through the attribute keyword).
func attachDefaultSuperlatives(s *schema.Schema) {
	add := func(kw, attr string, desc bool) {
		if _, ok := s.Attr(attr); !ok {
			return
		}
		if s.SuperlativeAttr == nil {
			s.SuperlativeAttr = map[string]schema.Superlative{}
		}
		if _, exists := s.SuperlativeAttr[kw]; !exists {
			s.SuperlativeAttr[kw] = schema.Superlative{Attr: attr, Descending: desc}
		}
	}
	add("cheapest", "price", false)
	add("inexpensive", "price", false)
	add("newest", "year", true)
	add("latest", "year", true)
	add("oldest", "year", false)
	add("earliest", "year", false)
	add("highest", "salary", true)
	add("lowest", "salary", false)
}

// InferFromTable samples every record of an existing table, useful
// for re-deriving a schema from already-loaded ads.
func InferFromTable(domain, table string, tbl *sqldb.Table, opts Options) (*schema.Schema, error) {
	records := make([]map[string]sqldb.Value, 0, tbl.Len())
	for _, id := range tbl.AllRowIDs() {
		records = append(records, tbl.RecordMap(id))
	}
	return Infer(domain, table, records, opts)
}

// Agreement compares an inferred schema against a reference and
// returns the fraction of reference attributes whose Type matches,
// plus the per-attribute mismatches. Used by tests and the schema-
// inference example to quantify inference quality.
func Agreement(inferred, reference *schema.Schema) (float64, []string) {
	if len(reference.Attrs) == 0 {
		return 0, nil
	}
	match := 0
	var mismatches []string
	for _, want := range reference.Attrs {
		got, ok := inferred.Attr(want.Name)
		switch {
		case !ok:
			mismatches = append(mismatches, fmt.Sprintf("%s: missing", want.Name))
		case got.Type != want.Type:
			mismatches = append(mismatches, fmt.Sprintf("%s: %v, want %v", want.Name, got.Type, want.Type))
		default:
			match++
		}
	}
	return float64(match) / float64(len(reference.Attrs)), mismatches
}
