package schemagen

import (
	"testing"

	"repro/internal/adsgen"
	"repro/internal/schema"
	"repro/internal/sqldb"
)

func TestInferRecoversDomainSchemas(t *testing.T) {
	// Inference over generated ads should type most attributes of
	// every built-in domain correctly.
	for _, name := range schema.DomainNames {
		ref := schema.ByName(name)
		db := sqldb.NewDB()
		tbl, err := adsgen.NewGenerator(17).Populate(db, ref, 500)
		if err != nil {
			t.Fatal(err)
		}
		inferred, err := InferFromTable(name, ref.Table, tbl, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// 0.7 floor: Type I vs Type II is genuinely ambiguous for
		// attributes with equal cardinality and coverage (clothing's
		// "item" and "color" both enumerate ten values), so perfect
		// agreement is not achievable from statistics alone.
		agreement, mismatches := Agreement(inferred, ref)
		if agreement < 0.7 {
			t.Errorf("%s: agreement %.2f (mismatches: %v)", name, agreement, mismatches)
		}
		// Type III ranges must contain the observed data.
		for _, a := range ref.NumericAttrs() {
			got, ok := inferred.Attr(a.Name)
			if !ok || got.Type != schema.TypeIII {
				continue
			}
			lo, hi, _ := tbl.MinMax(a.Name, nil)
			if got.Min > lo || got.Max < hi {
				t.Errorf("%s.%s: inferred range [%g,%g] misses data [%g,%g]",
					name, a.Name, got.Min, got.Max, lo, hi)
			}
		}
	}
}

func TestInferCarsTypeAssignments(t *testing.T) {
	ref := schema.Cars()
	db := sqldb.NewDB()
	tbl, err := adsgen.NewGenerator(17).Populate(db, ref, 500)
	if err != nil {
		t.Fatal(err)
	}
	inferred, err := InferFromTable("cars", "car_ads", tbl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The numeric trio must be Type III.
	for _, n := range []string{"year", "price", "mileage"} {
		if a, ok := inferred.Attr(n); !ok || a.Type != schema.TypeIII {
			t.Errorf("%s inferred as %v", n, a.Type)
		}
	}
	// Make and model (high-cardinality identifiers) must be Type I.
	for _, n := range []string{"make", "model"} {
		if a, ok := inferred.Attr(n); !ok || a.Type != schema.TypeI {
			t.Errorf("%s inferred as %v, want Type I", n, a.Type)
		}
	}
	// Low-cardinality properties must be Type II.
	for _, n := range []string{"transmission", "doors"} {
		if a, ok := inferred.Attr(n); !ok || a.Type != schema.TypeII {
			t.Errorf("%s inferred as %v, want Type II", n, a.Type)
		}
	}
	if err := inferred.Validate(); err != nil {
		t.Errorf("inferred schema invalid: %v", err)
	}
}

func TestInferErrors(t *testing.T) {
	if _, err := Infer("x", "t", nil, DefaultOptions()); err == nil {
		t.Error("no records should error")
	}
	// All-numeric records: no Type I candidate.
	recs := []map[string]sqldb.Value{
		{"a": sqldb.Number(1), "b": sqldb.Number(2)},
	}
	if _, err := Infer("x", "t", recs, DefaultOptions()); err == nil {
		t.Error("no categorical attribute should error")
	}
}

func TestInferSparseAttributeNotTypeI(t *testing.T) {
	// An attribute present in only half the records cannot be a
	// required identifier.
	var recs []map[string]sqldb.Value
	for i := 0; i < 100; i++ {
		r := map[string]sqldb.Value{
			"id":    sqldb.String(pick(i, 40)), // dense, high cardinality
			"price": sqldb.Number(float64(100 + i)),
		}
		if i%2 == 0 {
			r["note"] = sqldb.String(pick(i, 50))
		}
		recs = append(recs, r)
	}
	s, err := Infer("x", "t", recs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := s.Attr("id"); a.Type != schema.TypeI {
		t.Errorf("id inferred as %v", a.Type)
	}
	if a, _ := s.Attr("note"); a.Type == schema.TypeI {
		t.Error("sparse attribute promoted to Type I")
	}
}

func TestInferDropsEmptyAttributes(t *testing.T) {
	recs := []map[string]sqldb.Value{
		{"id": sqldb.String("a"), "ghost": sqldb.Null},
		{"id": sqldb.String("b"), "ghost": sqldb.Null},
	}
	s, err := Infer("x", "t", recs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Attr("ghost"); ok {
		t.Error("never-populated attribute survived inference")
	}
}

func TestDefaultSuperlativesAttached(t *testing.T) {
	ref := schema.Cars()
	db := sqldb.NewDB()
	tbl, err := adsgen.NewGenerator(17).Populate(db, ref, 200)
	if err != nil {
		t.Fatal(err)
	}
	inferred, err := InferFromTable("cars", "car_ads", tbl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sup, ok := inferred.SuperlativeAttr["cheapest"]
	if !ok || sup.Attr != "price" || sup.Descending {
		t.Errorf("cheapest = %+v, %v", sup, ok)
	}
	sup, ok = inferred.SuperlativeAttr["newest"]
	if !ok || sup.Attr != "year" || !sup.Descending {
		t.Errorf("newest = %+v, %v", sup, ok)
	}
	// No salary attribute: no salary superlatives.
	if _, ok := inferred.SuperlativeAttr["highest"]; ok {
		t.Error("salary superlative attached without a salary attribute")
	}
}

func TestAgreementEdgeCases(t *testing.T) {
	ref := schema.Cars()
	frac, miss := Agreement(&schema.Schema{}, ref)
	if frac != 0 || len(miss) != len(ref.Attrs) {
		t.Errorf("empty inferred: %g, %d mismatches", frac, len(miss))
	}
	frac, miss = Agreement(ref, ref)
	if frac != 1 || len(miss) != 0 {
		t.Errorf("self agreement: %g, %v", frac, miss)
	}
}

func pick(i, n int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	a := letters[i%n%26]
	b := letters[(i/26+i%n)%26]
	return string([]byte{a, b, byte('0' + i%n%10)})
}
