package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAccuracy(t *testing.T) {
	if Accuracy(3, 4) != 0.75 {
		t.Error("Accuracy(3,4)")
	}
	if Accuracy(0, 0) != 0 {
		t.Error("Accuracy(0,0) should be 0")
	}
}

func TestPrecisionRecallF(t *testing.T) {
	prf := PrecisionRecallF([]int{1, 2, 3, 4}, []int{3, 4, 5, 6})
	if !almost(prf.Precision, 0.5) || !almost(prf.Recall, 0.5) || !almost(prf.F1, 0.5) {
		t.Errorf("PRF = %+v", prf)
	}
	// Both empty: perfect.
	prf = PrecisionRecallF([]int{}, []int{})
	if prf.F1 != 1 {
		t.Errorf("empty/empty = %+v", prf)
	}
	// Retrieved nothing relevant.
	prf = PrecisionRecallF([]int{9}, []int{1})
	if prf.F1 != 0 {
		t.Errorf("disjoint = %+v", prf)
	}
	// Duplicates in retrieved are not double-counted.
	prf = PrecisionRecallF([]int{1, 1, 1}, []int{1})
	if !almost(prf.Precision, 1) || !almost(prf.Recall, 1) {
		t.Errorf("dup handling = %+v", prf)
	}
}

func TestPRFBounds(t *testing.T) {
	f := func(a, b []int8) bool {
		ra := make([]int8, len(a))
		copy(ra, a)
		prf := PrecisionRecallF(ra, b)
		for _, v := range []float64{prf.Precision, prf.Recall, prf.F1} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		// F is never above either P or R... actually F <= max(P,R)
		// and F >= min(P,R) does not hold for harmonic mean; the
		// harmonic mean lies between min and max when both positive.
		if prf.Precision > 0 && prf.Recall > 0 {
			lo, hi := prf.Precision, prf.Recall
			if lo > hi {
				lo, hi = hi, lo
			}
			if prf.F1 < lo-1e-12 || prf.F1 > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPrecisionAtK(t *testing.T) {
	related := []bool{true, false, true, true, false}
	if got := PrecisionAtK(related, 1); got != 1 {
		t.Errorf("P@1 = %g", got)
	}
	if got := PrecisionAtK(related, 5); got != 0.6 {
		t.Errorf("P@5 = %g", got)
	}
	// Short lists pad with non-relevant.
	if got := PrecisionAtK([]bool{true}, 5); got != 0.2 {
		t.Errorf("P@5 short = %g", got)
	}
	if got := PrecisionAtK(related, 0); got != 0 {
		t.Errorf("P@0 = %g", got)
	}
}

func TestReciprocalRankAndMRR(t *testing.T) {
	if got := ReciprocalRank([]bool{false, false, true}); !almost(got, 1.0/3) {
		t.Errorf("RR = %g", got)
	}
	if got := ReciprocalRank([]bool{false, false}); got != 0 {
		t.Errorf("RR none = %g", got)
	}
	per := [][]bool{
		{true},                // RR 1
		{false, true},         // RR 1/2
		{false, false, false}, // RR 0
	}
	want := (1.0 + 0.5 + 0) / 3
	if got := MRR(per); !almost(got, want) {
		t.Errorf("MRR = %g, want %g", got, want)
	}
	if MRR(nil) != 0 {
		t.Error("MRR(nil) should be 0")
	}
}

func TestMeanPrecisionAtK(t *testing.T) {
	per := [][]bool{
		{true, true, false, false, false},  // 0.4
		{false, false, false, false, true}, // 0.2
	}
	if got := MeanPrecisionAtK(per, 5); !almost(got, 0.3) {
		t.Errorf("mean P@5 = %g", got)
	}
	if MeanPrecisionAtK(nil, 5) != 0 {
		t.Error("empty input should be 0")
	}
}

func TestMeanAndF1(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean")
	}
	if F1(0, 0) != 0 {
		t.Error("F1(0,0)")
	}
	if !almost(F1(1, 1), 1) {
		t.Error("F1(1,1)")
	}
}
