// Package metrics implements the paper-evaluation measures of Sec. 5:
// classification accuracy (Eq. 6), set precision/recall/F-measure
// (Sec. 5.3), and the ranking metrics P@K (Eq. 7) and MRR (Eq. 8).
//
// These are pure functions over result sets, used by the experiment
// harness to score answer quality against gold labels. Runtime
// telemetry — the mutable process-wide counters, gauges, and latency
// histograms that GET /api/status reports — lives in the subpackage
// repro/internal/metrics/telemetry; the two roles never mix.
package metrics

// Accuracy is correct/total (Eq. 6). It returns 0 for total == 0.
func Accuracy(correct, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PRF holds a precision/recall/F-measure triple.
type PRF struct {
	Precision, Recall, F1 float64
}

// PrecisionRecallF computes set-based P, R and F against ground truth:
// precision = |retrieved ∩ relevant| / |retrieved|,
// recall = |retrieved ∩ relevant| / |relevant|,
// F = harmonic mean (Sec. 5.3). Conventions: empty retrieved and empty
// relevant is a perfect result; empty retrieved with non-empty
// relevant (or vice versa) scores 0.
func PrecisionRecallF[T comparable](retrieved, relevant []T) PRF {
	if len(retrieved) == 0 && len(relevant) == 0 {
		return PRF{Precision: 1, Recall: 1, F1: 1}
	}
	rel := make(map[T]struct{}, len(relevant))
	for _, r := range relevant {
		rel[r] = struct{}{}
	}
	hit := 0
	seen := make(map[T]struct{}, len(retrieved))
	for _, r := range retrieved {
		if _, dup := seen[r]; dup {
			continue
		}
		seen[r] = struct{}{}
		if _, ok := rel[r]; ok {
			hit++
		}
	}
	var p, r float64
	if len(seen) > 0 {
		p = float64(hit) / float64(len(seen))
	}
	if len(rel) > 0 {
		r = float64(hit) / float64(len(rel))
	}
	return PRF{Precision: p, Recall: r, F1: F1(p, r)}
}

// F1 is the harmonic mean of precision and recall.
func F1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Mean averages a float slice; 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// PrecisionAtK computes P@K for one ranked answer list given per-item
// relevance judgments (Eq. 7's inner term): the fraction of the top K
// answers judged related. Lists shorter than K are padded with
// non-relevant entries, as Eq. 7's fixed-K denominator implies.
func PrecisionAtK(related []bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hit := 0
	for i := 0; i < k && i < len(related); i++ {
		if related[i] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// ReciprocalRank returns 1/r for the first related answer at 1-based
// rank r, or 0 when none is related (Eq. 8's per-question term with
// r_i = ∞).
func ReciprocalRank(related []bool) float64 {
	for i, rel := range related {
		if rel {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// MRR averages the reciprocal ranks of many questions (Eq. 8).
func MRR(perQuestion [][]bool) float64 {
	if len(perQuestion) == 0 {
		return 0
	}
	s := 0.0
	for _, related := range perQuestion {
		s += ReciprocalRank(related)
	}
	return s / float64(len(perQuestion))
}

// MeanPrecisionAtK averages P@K over many questions (Eq. 7).
func MeanPrecisionAtK(perQuestion [][]bool, k int) float64 {
	if len(perQuestion) == 0 {
		return 0
	}
	s := 0.0
	for _, related := range perQuestion {
		s += PrecisionAtK(related, k)
	}
	return s / float64(len(perQuestion))
}
