// Package telemetry holds the process-wide runtime telemetry for a
// cqads node: lock-free counters and gauges that subsystems bump on
// their hot paths, and lock-striped latency histograms that the HTTP
// layer records into, all reported by GET /api/status.
//
// It is deliberately separate from its parent package
// repro/internal/metrics, which implements the *paper-evaluation*
// measures (accuracy, precision/recall/F1, P@K, MRR) used by the
// experiment harness to score answer quality against gold labels.
// The split keeps the two roles from colliding: evaluation metrics
// are pure functions over result sets and never touch process state;
// telemetry is mutable process state and never part of an answer.
//
// Everything here is monotonic (counters, histogram tallies) or
// last-value-wins (gauges). There is no reset endpoint by design:
// scrapers derive rates from successive monotonic samples, so two
// scrapers can never corrupt each other's view.
package telemetry

import "sync/atomic"

// Counter is a monotonically increasing operation tally, safe for
// concurrent use. The zero value is ready.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.n.Load() }

// Gauge is a last-value-wins measurement, safe for concurrent use.
// The zero value is ready.
type Gauge struct{ n atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Load returns the last recorded value.
func (g *Gauge) Load() int64 { return g.n.Load() }

// Repl holds the replication counters for this process. A primary
// bumps the shipping side (ops shipped to followers, snapshot
// transfers served); a follower bumps the applying side (ops applied,
// snapshots fetched for bootstrap or catch-up) and keeps LagOps at its
// last observed replication lag. GET /api/status exposes all of them.
var Repl struct {
	// OpsShipped counts WAL operations served to followers over
	// GET /api/repl/wal.
	OpsShipped Counter
	// OpsApplied counts operations this follower applied from its
	// primary's stream.
	OpsApplied Counter
	// SnapshotsServed counts snapshot transfers served to followers
	// over GET /api/repl/snapshot.
	SnapshotsServed Counter
	// SnapshotsFetched counts snapshot transfers this follower
	// performed: the initial bootstrap plus every compaction-forced
	// re-bootstrap.
	SnapshotsFetched Counter
	// LagOps is the follower's last observed lag in operations
	// (primary sequence minus applied sequence).
	LagOps Gauge
}

// Plan holds the plan-cache counters for this process (the compiled
// streaming-query plans of internal/sql/plan, keyed on question
// shape). A healthy steady-state workload shows Hits dwarfing Misses
// — millions of users ask the same few hundred tagged shapes — while
// Invalidations ticking tracks live ingest moving table versions.
// GET /api/status exposes all of them.
var Plan struct {
	// Hits counts cache lookups answered by a current compiled plan.
	Hits Counter
	// Misses counts lookups that found no plan for the shape and
	// compiled one.
	Misses Counter
	// Invalidations counts lookups that found a plan compiled against
	// a superseded table version (a mutation landed since) and
	// recompiled.
	Invalidations Counter
	// Size is the number of plans currently cached.
	Size Gauge
}

// Failover holds the election counters for this process: how often
// leadership moved and why. A healthy set shows heartbeats climbing
// and everything else flat; elections ticking without promotions means
// split votes or unreachable majorities.
var Failover struct {
	// HeartbeatsSent counts lease renewals this leader issued.
	HeartbeatsSent Counter
	// HeartbeatsRejected counts heartbeats this node fenced for
	// carrying a stale term — each one is a deposed leader learning
	// about its successor.
	HeartbeatsRejected Counter
	// Elections counts campaigns this node started (its lease lapsed).
	Elections Counter
	// VotesGranted counts votes this node granted to peers.
	VotesGranted Counter
	// Promotions counts elections this node won.
	Promotions Counter
	// StepDowns counts demotions after being deposed by a higher term.
	StepDowns Counter
	// FencedStreams counts WAL polls this node refused because the
	// follower's cursor diverged from its history (log matching
	// failed) — the rejoining-old-primary signature.
	FencedStreams Counter
	// QuorumTimeouts counts quorum-acked writes that timed out waiting
	// for follower acknowledgements (the write is durable locally).
	QuorumTimeouts Counter
	// Overloads counts writes refused by ingest admission control
	// (WAL backlog or pending-quorum queue past threshold).
	Overloads Counter
}

// Latency holds the per-endpoint request-latency histograms for this
// process. The HTTP layer (internal/webui) records one sample per
// request served; GET /api/status reports each histogram's cumulative
// count and p50/p90/p99/p999. Counts are monotonic — rates are the
// scraper's job (see the package comment).
var Latency struct {
	// Ask is GET /api/ask — one natural-language question.
	Ask Histogram
	// AskBatch is POST /api/ask/batch — a question batch.
	AskBatch Histogram
	// Ingest is POST /api/ad and DELETE /api/ad/{id} — durable
	// mutations, timed end-to-end including the WAL fsync (and the
	// quorum wait for ack=quorum writes).
	Ingest Histogram
	// ReplPoll is GET /api/repl/wal — follower long-polls; the
	// long-poll wait is part of the sample, so high percentiles
	// track the poll timeout, not a problem.
	ReplPoll Histogram
}

// Front holds the front-tier hedging counters (internal/shard.Router).
// Hedges climbing with HedgeWins near zero means the hedge delay is
// too aggressive for the fleet's real tail; HedgeWins tracking Hedges
// means a member is persistently slow or restarting.
var Front struct {
	// Hedges counts backup requests launched because the primary
	// member exceeded the hedge delay (or failed outright with
	// another member available).
	Hedges Counter
	// HedgeWins counts hedged requests where the backup's response
	// was the one used.
	HedgeWins Counter
}
