package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// histStripes is the number of independently locked shards a
// Histogram spreads its recorders over. Eight keeps lock contention
// negligible at the request rates a single node serves while keeping
// Snapshot cheap (it visits every stripe once).
const histStripes = 8

// histBuckets is the number of power-of-two buckets. Recorded values
// are non-negative int64 nanoseconds, so bits.Len64 yields 0..63 and
// 64 buckets cover the full range with no overflow anywhere.
const histBuckets = 64

// Histogram is a lock-striped latency histogram with power-of-two
// buckets: bucket 0 holds the value 0 and bucket k (k ≥ 1) holds
// [2^(k-1), 2^k − 1]. Recording is a stripe pick plus one short
// critical section; quantiles come from a Snapshot, and snapshots
// merge exactly (integer bucket adds), so cluster-wide rollups are
// associative no matter how the per-node histograms are combined.
//
// The histogram itself never reads a clock — callers time their own
// work and Record the elapsed nanoseconds — which keeps the type
// usable from any package without wallclock-lint exemptions.
// The zero value is ready.
type Histogram struct {
	// rotor distributes recorders over stripes round-robin; a single
	// atomic add is far cheaper than the mutex convoy it prevents.
	rotor   atomic.Uint32
	stripes [histStripes]histStripe
}

type histStripe struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	sum    uint64
	count  uint64
}

// bucketOf returns the bucket index for a sample. Negative samples
// (a clock stepped backwards mid-request) clamp to bucket 0 rather
// than corrupting the tally.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// bucketBounds returns the inclusive value range bucket b covers.
func bucketBounds(b int) (lo, hi int64) {
	if b <= 0 {
		return 0, 0
	}
	lo = int64(1) << (b - 1)
	if b == histBuckets-1 {
		return lo, math.MaxInt64
	}
	return lo, lo<<1 - 1
}

// Record adds one sample, in nanoseconds. Safe for concurrent use.
func (h *Histogram) Record(ns int64) {
	s := &h.stripes[h.rotor.Add(1)%histStripes]
	b := bucketOf(ns)
	s.mu.Lock()
	s.counts[b]++
	s.count++
	if ns > 0 {
		s.sum += uint64(ns)
	}
	s.mu.Unlock()
}

// Count returns the cumulative number of samples ever recorded. It is
// monotonic — the histogram doubles as the endpoint's request counter.
func (h *Histogram) Count() int64 {
	var n uint64
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		n += s.count
		s.mu.Unlock()
	}
	return int64(n)
}

// Snapshot is a point-in-time copy of a Histogram's tallies. It is a
// plain value: compare, merge, and query it without synchronization.
type Snapshot struct {
	Counts [histBuckets]uint64
	Sum    uint64
	Count  uint64
}

// Snapshot copies the current tallies. Each stripe is read under its
// own lock, so the result is a union of per-stripe-consistent states;
// concurrent recorders may land on either side of the cut, which is
// the usual (and sufficient) contract for monitoring reads.
func (h *Histogram) Snapshot() Snapshot {
	var out Snapshot
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		for b, n := range s.counts {
			out.Counts[b] += n
		}
		out.Sum += s.sum
		out.Count += s.count
		s.mu.Unlock()
	}
	return out
}

// WireBuckets returns the bucket counts with trailing zero buckets
// trimmed — the compact wire form a status endpoint serves. Almost all
// of the 64 buckets are zero for real latencies (bucket 45 is already
// ~9.8 hours), so trimming keeps status bodies small without losing a
// single count.
func (s Snapshot) WireBuckets() []uint64 {
	last := -1
	for b, n := range s.Counts {
		if n != 0 {
			last = b
		}
	}
	out := make([]uint64, last+1)
	copy(out, s.Counts[:last+1])
	return out
}

// SnapshotFromWire rebuilds a Snapshot from its wire form (the
// trimmed bucket counts plus the raw sum; the total count is the
// bucket sum). Buckets beyond histBuckets are ignored — a newer node
// cannot produce them, so their presence means a corrupt body.
func SnapshotFromWire(buckets []uint64, sumNs uint64) Snapshot {
	var out Snapshot
	for b, n := range buckets {
		if b >= histBuckets {
			break
		}
		out.Counts[b] = n
		out.Count += n
	}
	out.Sum = sumNs
	return out
}

// Merge returns the exact combination of two snapshots. Because it is
// pure integer addition bucket by bucket, Merge is associative and
// commutative: a cluster rollup yields the same histogram regardless
// of the order nodes are folded in.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := s
	for b, n := range o.Counts {
		out.Counts[b] += n
	}
	out.Sum += o.Sum
	out.Count += o.Count
	return out
}

// Quantile estimates the q-th quantile (q in [0,1]) in nanoseconds:
// it finds the bucket holding the target rank and interpolates
// linearly within the bucket's bounds. The estimate is therefore
// always inside the true sample's power-of-two bucket — off by at
// most 2× — which is the resolution this histogram trades for its
// fixed footprint. Returns 0 on an empty snapshot.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var cum float64
	for b, n := range s.Counts {
		if n == 0 {
			continue
		}
		fn := float64(n)
		if rank < cum+fn {
			lo, hi := bucketBounds(b)
			frac := (rank - cum) / fn
			if frac < 0 {
				frac = 0
			}
			return lo + int64(frac*float64(hi-lo))
		}
		cum += fn
	}
	// Unreachable: ranks always land inside the cumulative mass.
	lo, _ := bucketBounds(histBuckets - 1)
	return lo
}

// Mean returns the arithmetic mean sample in nanoseconds, exact over
// the recorded sums (not bucketed). Returns 0 on an empty snapshot.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
