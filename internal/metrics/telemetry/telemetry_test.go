package telemetry

import (
	"sync"
	"testing"
)

func TestCounterConcurrentAdds(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("Counter = %d, want 8000", got)
	}
}

func TestGaugeLastValueWins(t *testing.T) {
	var g Gauge
	if g.Load() != 0 {
		t.Fatalf("zero Gauge = %d", g.Load())
	}
	g.Set(42)
	g.Set(7)
	if got := g.Load(); got != 7 {
		t.Fatalf("Gauge = %d, want 7", got)
	}
}
