package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// distributions used by the quantile-accuracy test. Each returns n
// deterministic samples from a seeded source so failures reproduce.
var distributions = []struct {
	name string
	gen  func(r *rand.Rand, n int) []int64
}{
	{"uniform", func(r *rand.Rand, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = r.Int63n(10_000_000) // 0..10ms
		}
		return out
	}},
	{"exponentialish", func(r *rand.Rand, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(r.ExpFloat64() * 500_000) // mean 0.5ms
		}
		return out
	}},
	{"constant", func(r *rand.Rand, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = 1_234_567
		}
		return out
	}},
	{"bimodal", func(r *rand.Rand, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			if r.Intn(10) == 0 {
				out[i] = 50_000_000 + r.Int63n(50_000_000) // slow tail
			} else {
				out[i] = 100_000 + r.Int63n(100_000) // fast mode
			}
		}
		return out
	}},
}

// TestQuantileAccuracy checks every estimate against a sorted-slice
// reference: the histogram's answer must land in the same
// power-of-two bucket as the true sample at the target rank — the
// documented ≤2× resolution contract.
func TestQuantileAccuracy(t *testing.T) {
	const n = 20_000
	quantiles := []float64{0, 0.5, 0.9, 0.99, 0.999, 1}
	for _, d := range distributions {
		t.Run(d.name, func(t *testing.T) {
			samples := d.gen(rand.New(rand.NewSource(9)), n)
			var h Histogram
			for _, v := range samples {
				h.Record(v)
			}
			snap := h.Snapshot()
			if snap.Count != n {
				t.Fatalf("snapshot count = %d, want %d", snap.Count, n)
			}
			sorted := append([]int64(nil), samples...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, q := range quantiles {
				ref := sorted[int(q*float64(n-1))]
				est := snap.Quantile(q)
				if bucketOf(est) != bucketOf(ref) {
					t.Errorf("q=%g: estimate %d not in reference bucket (ref %d, bucket %d vs %d)",
						q, est, ref, bucketOf(est), bucketOf(ref))
				}
			}
		})
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	h.Record(0)
	h.Record(-5) // clamped to bucket 0, tally intact
	snap := h.Snapshot()
	if snap.Count != 2 || snap.Quantile(1) != 0 {
		t.Fatalf("zero/negative samples: count=%d q1=%d", snap.Count, snap.Quantile(1))
	}
	var one Histogram
	one.Record(777)
	s := one.Snapshot()
	lo, hi := bucketBounds(bucketOf(777))
	if got := s.Quantile(0.5); got < lo || got > hi {
		t.Fatalf("single-sample quantile %d outside bucket [%d,%d]", got, lo, hi)
	}
}

// TestMergeAssociativity checks the cluster-rollup contract: folding
// per-node snapshots in any grouping yields the identical histogram.
func TestMergeAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	mk := func() Snapshot {
		var h Histogram
		for i := 0; i < 5000; i++ {
			h.Record(r.Int63n(1_000_000_000))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left != right {
		t.Fatalf("merge not associative: (a·b)·c != a·(b·c)")
	}
	if com := b.Merge(a).Merge(c); com != left {
		t.Fatalf("merge not commutative: (b·a)·c != (a·b)·c")
	}
	if left.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count = %d, want %d", left.Count, a.Count+b.Count+c.Count)
	}
	if left.Sum != a.Sum+b.Sum+c.Sum {
		t.Fatalf("merged sum = %d, want %d", left.Sum, a.Sum+b.Sum+c.Sum)
	}
}

// TestWireRoundTrip checks the cluster-rollup wire contract: a
// snapshot survives WireBuckets/SnapshotFromWire unchanged, and
// merging rebuilt snapshots — the front tier's cluster_latency path —
// equals merging the originals.
func TestWireRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	mk := func(n int) Snapshot {
		var h Histogram
		for i := 0; i < n; i++ {
			h.Record(r.Int63n(5_000_000_000))
		}
		return h.Snapshot()
	}
	a, b := mk(3000), mk(41)
	for _, s := range []Snapshot{a, b, {}} {
		back := SnapshotFromWire(s.WireBuckets(), s.Sum)
		if back != s {
			t.Fatalf("wire round-trip altered the snapshot:\n got %+v\nwant %+v", back, s)
		}
	}
	direct := a.Merge(b)
	overWire := SnapshotFromWire(a.WireBuckets(), a.Sum).Merge(SnapshotFromWire(b.WireBuckets(), b.Sum))
	if overWire != direct {
		t.Fatal("merging wire-rebuilt snapshots diverges from merging the originals")
	}
	// The trim is real (no 64-element bodies for ordinary latencies)
	// and lossless by construction.
	if w := a.WireBuckets(); len(w) >= histBuckets {
		t.Fatalf("wire form not trimmed: %d buckets", len(w))
	}
	// Corrupt over-long bodies are ignored past the bucket range.
	long := make([]uint64, histBuckets+8)
	for i := range long {
		long[i] = 1
	}
	if got := SnapshotFromWire(long, 0).Count; got != histBuckets {
		t.Fatalf("oversized wire body counted %d, want %d", got, histBuckets)
	}
}

// TestHistogramConcurrentRecord exercises recorders racing snapshots;
// run under -race it proves the striping is actually safe.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() { // concurrent reader racing the recorders
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
				h.Count()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(r.Int63n(1_000_000))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
	if snap := h.Snapshot(); snap.Count != workers*per {
		t.Fatalf("snapshot count = %d, want %d", snap.Count, workers*per)
	}
}
