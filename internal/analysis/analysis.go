// Package analysis is the project's static-analysis substrate: a
// deliberately small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface the cqadslint suite needs.
//
// The build environment vendors nothing, so rather than importing
// x/tools this package provides the same three ideas from the standard
// library alone:
//
//   - Analyzer / Pass / Diagnostic — one named check run over one
//     type-checked package (analysis.go).
//   - A package loader — `go list -export -deps -json` enumerates the
//     packages and their compiled export data, and the stock gc
//     importer (go/importer) consumes that export data, so a whole
//     module type-checks in milliseconds per package with no source
//     re-checking of dependencies (load.go).
//   - The `//lint:cqads-ignore <analyzer> <reason>` suppression
//     directive, validated strictly: unknown analyzer names, missing
//     reasons, and directives that suppress nothing are themselves
//     findings (ignore.go).
//
// The sibling analysistest package drives analyzers over fixture
// corpora with `// want "regexp"` expectations, mirroring
// x/tools/go/analysis/analysistest closely enough that the fixtures
// would port verbatim.
//
// The analyzers themselves live in subpackages (detorder, wallclock,
// locksafe, typederr, fsyncorder) and are assembled into a vet-style
// multichecker by cmd/cqadslint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check. It mirrors
// x/tools/go/analysis.Analyzer minus facts and dependencies, which the
// cqadslint suite does not need: every analyzer here is a pure
// single-package pass.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //lint:cqads-ignore directives. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: first line is a summary,
	// the rest elaborates.
	Doc string

	// Run applies the check to one package. Findings are delivered
	// through pass.Report; the error return is for operational
	// failures (malformed annotation syntax, not code findings).
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic: position information rendered
// against the file set, plus the analyzer that produced it. This is
// what drivers print and what the ignore machinery filters.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}
