package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed and type-checked package, ready for
// analyzer passes.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	// Sources maps each parsed filename to its raw bytes; the ignore
	// machinery needs them to classify directives as inline or
	// standalone.
	Sources map[string][]byte
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects soft type-check failures. A package with
	// type errors is still analyzed with whatever information was
	// recovered, matching go vet.
	TypeErrors []error
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir),
// compiles export data for their dependency graph via
// `go list -export -deps`, and parses + type-checks each matched
// package from source against that export data. Dependencies are
// imported from compiled export data, never re-checked, so loading a
// whole module costs roughly one compile of the module plus one
// type-check per target package.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("analysis: starting go list: %w", err)
	}
	exports := make(map[string]string)
	var targets []listEntry
	dec := json.NewDecoder(out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, e := range targets {
		if e.Error != nil {
			return nil, nil, fmt.Errorf("analysis: %s: %s", e.ImportPath, e.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, e.ImportPath, e.Dir, e.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return fset, pkgs, nil
}

// NewExportImporter returns a types importer that resolves import
// paths through compiled gc export data, located by the find callback
// (import path -> export data file). The underlying reader is the
// standard library's gc importer, the same machinery the compiler
// itself trusts.
func NewExportImporter(fset *token.FileSet, find func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := find(path)
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewTypesInfo allocates a types.Info with every map analyzers
// consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, Sources: make(map[string][]byte)}
	for _, name := range goFiles {
		fn := filepath.Join(dir, name)
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", fn, err)
		}
		pkg.Sources[fn] = src
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: package %s has no Go files", path)
	}
	pkg.Name = pkg.Files[0].Name.Name
	pkg.Info = NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even on (soft) errors; analyzers run
	// over whatever was recovered, like go vet does.
	tpkg, _ := conf.Check(path, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}
