package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Run loads the packages matching patterns under dir, applies every
// analyzer to every package, filters the results through the
// //lint:cqads-ignore directive machinery, and returns the surviving
// findings sorted by position. Directive problems (unknown analyzer,
// missing reason, suppresses-nothing) are returned as findings too:
// the suite treats a broken suppression exactly like a broken
// invariant.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	fset, pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Finding
	for _, pkg := range pkgs {
		findings, err := RunPackage(fset, pkg, analyzers, known)
		if err != nil {
			return nil, err
		}
		all = append(all, findings...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// RunPackage applies the analyzers to one loaded package and resolves
// suppressions. known is the set of valid analyzer names for directive
// validation (pass nil to derive it from analyzers).
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, known map[string]bool) ([]Finding, error) {
	if known == nil {
		known = make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			known[a.Name] = true
		}
	}
	directives, findings := CollectDirectives(fset, pkg, known)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Position: fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	findings = directives.Filter(findings)
	findings = append(findings, directives.Unused()...)
	return findings, nil
}
