// Package analysistest drives an analyzer over a fixture package and
// checks its diagnostics against `// want "regexp"` expectations — a
// standard-library-only equivalent of
// golang.org/x/tools/go/analysis/analysistest, close enough that the
// fixture corpora under each analyzer's testdata/src would port to the
// upstream harness verbatim.
//
// A fixture is one directory of Go files forming a single package.
// Imports must resolve from the standard library: the harness compiles
// export data for them on demand with `go list -export`. A line that
// should be flagged carries a trailing expectation:
//
//	for k := range m { // want `non-deterministic map iteration`
//
// Each `want` may carry several quoted regexps (backquoted or
// double-quoted); every regexp must match a distinct diagnostic
// reported on that line, and every diagnostic must be matched by some
// expectation, or the test fails with a position-sorted report.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package rooted at dir (conventionally
// "testdata/src/<name>"), runs the analyzer, and asserts its
// diagnostics against the fixture's want comments. The loaded package
// is returned for extra assertions.
func Run(t *testing.T, dir string, a *analysis.Analyzer) *analysis.Package {
	t.Helper()
	return run(t, dir, []*analysis.Analyzer{a}, false)
}

// RunWithDirectives is Run plus the //lint:cqads-ignore machinery: the
// analyzers' findings are filtered through the fixture's directives,
// and directive-validation findings (unknown analyzer, missing reason,
// unused directive) participate in want-matching like any other
// diagnostic, attributed to the "cqadslint" pseudo-analyzer.
func RunWithDirectives(t *testing.T, dir string, analyzers ...*analysis.Analyzer) *analysis.Package {
	t.Helper()
	return run(t, dir, analyzers, true)
}

func run(t *testing.T, dir string, analyzers []*analysis.Analyzer, directives bool) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := loadFixture(fset, dir)
	if err != nil {
		t.Fatal(err)
	}

	var findings []analysis.Finding
	if directives {
		findings, err = analysis.RunPackage(fset, pkg, analyzers, nil)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, analysis.Finding{
					Analyzer: a.Name,
					Position: fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s: %v", a.Name, err)
			}
		}
	}

	checkExpectations(t, fset, pkg, findings)
	return pkg
}

// expectation is one `want` regexp awaiting a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func checkExpectations(t *testing.T, fset *token.FileSet, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					if strings.HasPrefix(text, "/* want") {
						t.Errorf("%s: want comments must be line comments", fset.Position(c.Slash))
					}
					continue
				}
				pos := fset.Position(c.Slash)
				args := text[idx+len("// want "):]
				ms := wantRE.FindAllStringSubmatch(args, -1)
				if len(ms) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, text)
					continue
				}
				for _, m := range ms {
					raw := m[1]
					if strings.HasPrefix(m[0], `"`) {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
						continue
					}
					expects = append(expects, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		return a.Position.Line < b.Position.Line
	})
	for _, f := range findings {
		matched := false
		for _, e := range expects {
			if e.met || e.file != f.Position.Filename || e.line != f.Position.Line {
				continue
			}
			if e.re.MatchString(f.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", f.Position, f.Message, f.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.raw)
		}
	}
}

// loadFixture parses and type-checks the single package in dir.
func loadFixture(fset *token.FileSet, dir string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &analysis.Package{Dir: dir, Sources: make(map[string][]byte)}
	var imports []string
	seen := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fn := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Sources[fn] = src
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysistest: no Go files in %s", dir)
	}
	pkg.Name = pkg.Files[0].Name.Name
	pkg.Path = pkg.Name
	exports, err := stdExports(imports)
	if err != nil {
		return nil, err
	}
	imp := analysis.NewExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports.Load(path)
		if !ok {
			return "", false
		}
		return f.(string), true
	})
	pkg.Info = analysis.NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	if err != nil {
		// Fixtures must type-check: a broken fixture silently weakens
		// every assertion built on it.
		return nil, fmt.Errorf("analysistest: type-checking %s: %w", dir, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// stdExports compiles (once per process) and caches export data for
// the standard-library packages fixtures import.
var (
	exportCache sync.Map // import path -> export file
	exportMu    sync.Mutex
)

func stdExports(paths []string) (*sync.Map, error) {
	var missing []string
	for _, p := range paths {
		if _, ok := exportCache.Load(p); !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		exportMu.Lock()
		defer exportMu.Unlock()
		args := append([]string{
			"list", "-export", "-deps",
			"-f", "{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}",
		}, missing...)
		out, err := exec.Command("go", args...).Output()
		if err != nil {
			msg := ""
			if ee, ok := err.(*exec.ExitError); ok {
				msg = string(ee.Stderr)
			}
			return nil, fmt.Errorf("analysistest: go list -export %v: %v\n%s", missing, err, msg)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if path, file, ok := strings.Cut(strings.TrimSpace(line), "="); ok {
				exportCache.Store(path, file)
			}
		}
	}
	return &exportCache, nil
}
