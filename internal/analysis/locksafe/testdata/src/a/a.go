// Fixture for locksafe: guarded-field access, lock pairing, and
// annotation validation.
package a

import "sync"

type Counter struct {
	mu   sync.RWMutex
	n    int    // cqads:guarded-by mu
	name string // unguarded: freely accessible
}

// Lock + defer Unlock: the canonical write path.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// RLock is enough for a read.
func (c *Counter) Get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Unguarded fields need nothing.
func (c *Counter) Name() string { return c.name }

// Forgotten lock.
func (c *Counter) Bad() int {
	return c.n // want `Counter.n is guarded by "mu" but accessed without holding it`
}

// The *Locked convention: annotated helpers assume the lock.
//
// cqads:requires-lock mu
func (c *Counter) addLocked(d int) { c.n += d }

// Writes under a read lock are the PR 1 lazy-sort race shape.
func (c *Counter) BadWriteUnderRLock() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n++ // want `write to Counter.n \(guarded by "mu"\) while holding only c.mu.RLock`
}

// A freshly built local object is private: constructors need no lock.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

// Plain Unlock later in the body also pairs.
func bump(c *Counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Locking through a longer selector chain pairs by rendered receiver.
type Wrapper struct{ c *Counter }

func (w *Wrapper) Inc() {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	w.c.n++
}

func (c *Counter) MissingUnlock() {
	c.mu.Lock() // want `c.mu.Lock\(\) with no matching Unlock in this function`
	c.n++
}

func (c *Counter) DeferredLock() int {
	defer c.mu.Lock() // want `deferred c.mu.Lock\(\)`
	return 0
}

// Annotation errors are findings too.
type BadAnnot struct {
	n int // cqads:guarded-by missing // want `cqads:guarded-by names "missing", which is not a sync.Mutex/RWMutex field of BadAnnot`
}

// cqads:requires-lock mu
func free() {} // want `cqads:requires-lock on a function that is not a method`

// cqads:requires-lock name
func (c *Counter) wrongMutex() {} // want `cqads:requires-lock names "name", which is not a sync.Mutex/RWMutex field of Counter`
