// Package locksafe checks the project's lock annotation convention:
//
//	type Table struct {
//		mu   sync.RWMutex
//		rows []Record // cqads:guarded-by mu
//	}
//
//	// cqads:requires-lock mu
//	func (t *Table) insertLocked(...) { ... t.rows ... }
//
// A field annotated `cqads:guarded-by <mutex>` may only be accessed
//
//   - from a function that called <base>.<mutex>.Lock() (or RLock()
//     for reads) earlier in its body,
//   - from a method whose doc comment carries
//     `// cqads:requires-lock <mutex>` (the *Locked helper
//     convention), or
//   - through a local variable declared in the same function body —
//     a freshly built, not-yet-published object (the constructor
//     pattern).
//
// Writes demand the exclusive lock: mutating a guarded field while
// holding only RLock is reported (the latent lazy-sort race PR 1
// fixed was exactly that shape). Additionally, every Lock()/RLock()
// in any function of an annotated package must have a matching
// Unlock()/RUnlock() — deferred, or called later in the body — and a
// deferred Lock() is always a bug.
//
// The checks are intra-procedural and position-based, not a data-flow
// analysis: they catch the overwhelmingly common shapes (forgotten
// lock, forgotten unlock, wrong lock mode) and leave exotic handoffs
// to a //lint:cqads-ignore locksafe directive with a reason.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// Analyzer is the locksafe pass. It is annotation-driven, so it runs
// over every package and stays silent where nothing is annotated.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "checks cqads:guarded-by/cqads:requires-lock lock annotations and Lock/Unlock pairing",
	Run:  run,
}

// The annotations are line-anchored: a comment line that starts with
// the annotation binds (an optional parenthesized note or trailing
// comment is allowed); prose that merely mentions the marker
// mid-sentence does not.
var (
	guardedRE  = regexp.MustCompile(`(?m)^\s*cqads:guarded-by\s+([A-Za-z_]\w*)\s*(?:\(.*\)\s*|//.*)?$`)
	requiresRE = regexp.MustCompile(`(?m)^\s*cqads:requires-lock\s+([A-Za-z_]\w*)\s*(?:\(.*\)\s*|//.*)?$`)
)

// guards maps struct name -> guarded field name -> mutex field name.
type guards map[string]map[string]string

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	g := collectGuards(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, g, fd)
			}
		}
	}
	return nil
}

// collectGuards parses every cqads:guarded-by field annotation in the
// package, validating that the named mutex is a sibling field of
// sync.Mutex/RWMutex type.
func collectGuards(pass *analysis.Pass) guards {
	g := make(guards)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mutex, pos, ok := fieldAnnotation(field)
					if !ok {
						continue
					}
					if !hasMutexField(pass, ts, mutex) {
						pass.Reportf(pos,
							"cqads:guarded-by names %q, which is not a sync.Mutex/RWMutex field of %s",
							mutex, ts.Name.Name)
						continue
					}
					m := g[ts.Name.Name]
					if m == nil {
						m = make(map[string]string)
						g[ts.Name.Name] = m
					}
					for _, name := range field.Names {
						m[name.Name] = mutex
					}
					if len(field.Names) == 0 {
						pass.Reportf(pos, "cqads:guarded-by on an embedded field is not supported; name the field")
					}
				}
			}
		}
	}
	return g
}

func fieldAnnotation(field *ast.Field) (mutex string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], cg.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// hasMutexField reports whether the struct named by ts has a field
// `name` whose type is sync.Mutex or sync.RWMutex.
func hasMutexField(pass *analysis.Pass, ts *ast.TypeSpec, name string) bool {
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == name {
			return isMutexType(f.Type())
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockOp is one Lock/RLock/Unlock/RUnlock call in a function body.
type lockOp struct {
	base     string // rendered receiver chain, e.g. "t.mu" -> base "t.mu"
	name     string // Lock, RLock, Unlock, RUnlock
	pos      token.Pos
	deferred bool
}

func checkFunc(pass *analysis.Pass, g guards, fd *ast.FuncDecl) {
	recvName, recvStruct := receiver(pass, fd)
	required := requiredLocks(pass, g, fd, recvName, recvStruct)
	ops := collectLockOps(pass, fd.Body)
	checkPairing(pass, ops)
	writes := writeTargets(fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		structName, ok := ownerStruct(pass, selection)
		if !ok {
			return true
		}
		mutex, guarded := g[structName][sel.Sel.Name]
		if !guarded {
			return true
		}
		base := types.ExprString(sel.X)
		write := writes[sel]

		// The *Locked convention: the method declares the lock held on
		// entry for its receiver.
		if recvName != "" && base == recvName && required[mutex] {
			return true
		}
		// A freshly built local object is private until published.
		if locallyDeclared(pass, sel.X, fd) {
			return true
		}
		// Otherwise the function itself must have taken base.mutex.
		mode := lockModeBefore(ops, base+"."+mutex, sel.Pos())
		switch {
		case mode == "":
			pass.Reportf(sel.Pos(),
				"%s.%s is guarded by %q but accessed without holding it (lock %s.%s, or annotate the method cqads:requires-lock %s)",
				structName, sel.Sel.Name, mutex, base, mutex, mutex)
		case write && mode == "RLock":
			pass.Reportf(sel.Pos(),
				"write to %s.%s (guarded by %q) while holding only %s.%s.RLock; writes need the exclusive Lock",
				structName, sel.Sel.Name, mutex, base, mutex)
		}
		return true
	})
}

// receiver returns the method receiver's name and its (pointer-
// stripped) struct type name, or empty strings for plain functions.
func receiver(pass *analysis.Pass, fd *ast.FuncDecl) (name, structName string) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", ""
	}
	r := fd.Recv.List[0]
	if len(r.Names) > 0 {
		name = r.Names[0].Name
	}
	t := r.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (IndexExpr) are unwrapped to the base name.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		structName = id.Name
	}
	return name, structName
}

// requiredLocks parses the function's cqads:requires-lock annotations,
// validating that the function is a method of a struct that actually
// has such a mutex.
func requiredLocks(pass *analysis.Pass, g guards, fd *ast.FuncDecl, recvName, recvStruct string) map[string]bool {
	req := make(map[string]bool)
	if fd.Doc == nil {
		return req
	}
	for _, m := range requiresRE.FindAllStringSubmatch(fd.Doc.Text(), -1) {
		mutex := m[1]
		if recvStruct == "" {
			pass.Reportf(fd.Pos(), "cqads:requires-lock on a function that is not a method; annotate methods only")
			continue
		}
		if !hasMutexFieldByName(pass, recvStruct, mutex) {
			pass.Reportf(fd.Pos(),
				"cqads:requires-lock names %q, which is not a sync.Mutex/RWMutex field of %s",
				mutex, recvStruct)
			continue
		}
		req[mutex] = true
	}
	return req
}

func hasMutexFieldByName(pass *analysis.Pass, structName, mutex string) bool {
	obj := pass.Pkg.Scope().Lookup(structName)
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == mutex {
			return isMutexType(f.Type())
		}
	}
	return false
}

// ownerStruct resolves the struct type a field selection reads from,
// stripping pointers; ok is false for structs outside this package.
func ownerStruct(pass *analysis.Pass, selection *types.Selection) (string, bool) {
	t := selection.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	if named.Obj().Pkg() != pass.Pkg {
		return "", false
	}
	return named.Obj().Name(), true
}

// collectLockOps gathers every sync.Mutex/RWMutex Lock/RLock/Unlock/
// RUnlock call in body, noting deferred ones.
func collectLockOps(pass *analysis.Pass, body *ast.BlockStmt) []lockOp {
	var ops []lockOp
	record := func(call *ast.CallExpr, deferred bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return
		}
		fn, ok := selection.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return
		}
		switch fn.Name() {
		case "Lock", "RLock", "Unlock", "RUnlock":
			ops = append(ops, lockOp{
				base:     types.ExprString(sel.X),
				name:     fn.Name(),
				pos:      call.Pos(),
				deferred: deferred,
			})
		}
	}
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
			record(n.Call, true)
			// Still descend: the deferred call's arguments may contain
			// more calls.
		case *ast.CallExpr:
			if !deferred[n] {
				record(n, false)
			}
		}
		return true
	})
	return ops
}

// checkPairing enforces: no deferred Lock/RLock, and every Lock/RLock
// has a matching Unlock/RUnlock on the same rendered receiver — either
// deferred (anywhere) or called later in the body.
func checkPairing(pass *analysis.Pass, ops []lockOp) {
	for _, op := range ops {
		switch op.name {
		case "Lock", "RLock":
			if op.deferred {
				pass.Reportf(op.pos, "deferred %s.%s(): locking on the way out is almost certainly meant to be the matching unlock", op.base, op.name)
				continue
			}
			want := "Unlock"
			if op.name == "RLock" {
				want = "RUnlock"
			}
			if !hasMatchingUnlock(ops, op, want) {
				pass.Reportf(op.pos, "%s.%s() with no matching %s in this function (defer %s.%s() or call it on every path)",
					op.base, op.name, want, op.base, want)
			}
		}
	}
}

func hasMatchingUnlock(ops []lockOp, lock lockOp, want string) bool {
	for _, op := range ops {
		if op.base != lock.base || op.name != want {
			continue
		}
		if op.deferred || op.pos > lock.pos {
			return true
		}
	}
	return false
}

// lockModeBefore reports the strongest lock taken on the rendered
// mutex chain before pos: "Lock", "RLock", or "" when never locked
// earlier in the function.
func lockModeBefore(ops []lockOp, mutexChain string, pos token.Pos) string {
	mode := ""
	for _, op := range ops {
		if op.base != mutexChain || op.deferred || op.pos >= pos {
			continue
		}
		switch op.name {
		case "Lock":
			return "Lock"
		case "RLock":
			mode = "RLock"
		}
	}
	return mode
}

// locallyDeclared reports whether the access base resolves to a
// variable declared inside this function's body (not a parameter or
// receiver) — a freshly constructed object that nothing else can see
// yet.
func locallyDeclared(pass *analysis.Pass, base ast.Expr, fd *ast.FuncDecl) bool {
	for {
		switch x := base.(type) {
		case *ast.ParenExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
		default:
			return false
		}
	}
}

// writeTargets marks every expression that is mutated: assignment
// left-hand sides (unwrapped through index/star/paren so `t.rows[i] =`
// marks `t.rows`), ++/--, and address-taken operands.
func writeTargets(body *ast.BlockStmt) map[ast.Expr]bool {
	writes := make(map[ast.Expr]bool)
	mark := func(e ast.Expr) {
		for {
			writes[e] = true
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return writes
}


