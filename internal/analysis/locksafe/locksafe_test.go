package locksafe_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/locksafe"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), locksafe.Analyzer)
}
