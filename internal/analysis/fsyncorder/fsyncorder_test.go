package fsyncorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/fsyncorder"
)

func TestFsyncOrder(t *testing.T) {
	defer func(c, p []string) {
		fsyncorder.CorePkgs, fsyncorder.PersistPkgs = c, p
	}(fsyncorder.CorePkgs, fsyncorder.PersistPkgs)
	fsyncorder.CorePkgs = append(fsyncorder.CorePkgs, "a")
	fsyncorder.PersistPkgs = append(fsyncorder.PersistPkgs, "a")
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), fsyncorder.Analyzer)
}
