// Fixture for fsyncorder: rule 1 (Append under the ingest lock) and
// rule 2 (snapshot/truncate/fsync ordering).
package a

import (
	"os"
	"sync"
)

// Store stands in for persist.Store; the test routes this fixture
// path into PersistPkgs so the type matches.
type Store struct {
	mu  sync.Mutex
	wal *os.File
}

func (s *Store) Append(ops []string) error        { return nil }
func (s *Store) AppendApplied(ops []string) error { return nil }

type persister struct {
	mu    sync.Mutex
	store *Store
}

// The blessed ingest idiom: mutation and append are one critical
// section under the owner's mu.
func (p *persister) insertDurable(op string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.Append([]string{op})
}

// Append without the ingest lock: WAL order can diverge from
// mutation order.
func (p *persister) insertRacy(op string) error {
	return p.store.Append([]string{op}) // want `outside the ingest lock`
}

// Locking something else is not the ingest lock.
func (p *persister) insertWrongLock(op string) error {
	p.store.mu.Lock()
	defer p.store.mu.Unlock()
	return p.store.Append([]string{op}) // want `outside the ingest lock`
}

// appendLocked is a caller-holds-the-lock helper.
//
// cqads:requires-lock mu
func (p *persister) appendLocked(op string) error {
	return p.store.Append([]string{op})
}

// A freshly opened local store is unpublished; no lock needed yet.
func replay(ops []string) error {
	st := &Store{}
	for _, op := range ops {
		if err := st.Append([]string{op}); err != nil {
			return err
		}
	}
	return nil
}

// writeSnapshotFile is the snapshot publisher rule 2 keys on: its own
// write is synced before return.
func writeSnapshotFile(dir string, data []byte) error {
	f, err := os.CreateTemp(dir, "snap-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// Correct checkpoint: publish the snapshot, then truncate and sync
// the WAL.
func (s *Store) checkpoint(data []byte) error {
	if err := writeSnapshotFile("dir", data); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	return s.wal.Sync()
}

// Truncating first opens a crash window with neither WAL nor
// snapshot.
func (s *Store) checkpointReordered(data []byte) error {
	if err := s.wal.Truncate(0); err != nil { // want `WAL truncated before the snapshot`
		return err
	}
	if err := writeSnapshotFile("dir", data); err != nil {
		return err
	}
	return s.wal.Sync()
}

// A truncation that is never fsynced may resurrect trimmed frames
// after a crash.
func (s *Store) truncateNoSync() error {
	return s.wal.Truncate(0) // want `never fsynced`
}

// A frame written but not synced is not durable when Append returns.
func (s *Store) appendFrame(frame []byte) error {
	_, err := s.wal.Write(frame) // want `never fsynced`
	return err
}

// Write followed by Sync on the same file is the commit path.
func (s *Store) commit(frame []byte) error {
	if _, err := s.wal.Write(frame); err != nil {
		return err
	}
	return s.wal.Sync()
}
