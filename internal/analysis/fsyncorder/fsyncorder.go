// Package fsyncorder checks the durability ordering contracts between
// core ingestion and the persist store.
//
// Rule 1 — WAL appends ride the ingest lock. In the core package,
// log order must equal mutation order: every (*persist.Store).Append*
// call must be dominated by acquisition of the owning struct's ingest
// mutex (`p.mu.Lock()` before `p.store.Append(...)` in the same
// function), or sit in a method annotated `cqads:requires-lock mu`.
// An unlocked append can interleave with a concurrent mutation and
// recovery then replays operations in an order that never happened.
//
// Rule 2 — checkpoint ordering in the persist package:
//
//   - the new snapshot must be durably published (writeSnapshotFile)
//     BEFORE the WAL is truncated — the reverse order has a crash
//     window that loses every acknowledged write since the previous
//     checkpoint;
//   - a truncated WAL file must be fsynced in the same function;
//   - a file written in a persist function must be fsynced in that
//     function — an unsynced write is not durable when Append returns.
//
// Like the rest of the suite the checks are intra-procedural and
// position-based; deliberate exceptions take a
// //lint:cqads-ignore fsyncorder directive with a reason.
package fsyncorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// CorePkgs are the ingest-path packages rule 1 covers. Tests append
// their fixture path.
var CorePkgs = []string{"repro/internal/core"}

// PersistPkgs hold the durable store whose Append*/checkpoint
// machinery both rules key on. Tests append their fixture path.
var PersistPkgs = []string{"repro/internal/persist"}

// StoreTypeName is the durable store's type name within PersistPkgs.
var StoreTypeName = "Store"

// IngestMutex is the field name of the lock that makes mutation+log
// atomic in core.
var IngestMutex = "mu"

// SnapshotWriters are the persist functions that durably publish a
// snapshot; WAL truncation must follow one of them.
var SnapshotWriters = []string{"writeSnapshotFile"}

// Line-anchored like locksafe's: prose mentioning the marker does not
// bind.
var requiresRE = regexp.MustCompile(`(?m)^\s*cqads:requires-lock\s+([A-Za-z_]\w*)\s*(?:\(.*\)\s*|//.*)?$`)

// Analyzer is the fsyncorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncorder",
	Doc:  "WAL appends must hold the ingest lock; snapshot/truncate/fsync ordering must be crash-safe",
	Run:  run,
}

func has(path string, pkgs []string) bool {
	for _, p := range pkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	if has(pass.Pkg.Path(), CorePkgs) {
		checkIngestLock(pass)
	}
	if has(pass.Pkg.Path(), PersistPkgs) {
		checkCheckpointOrdering(pass)
	}
	return nil
}

// --- Rule 1: Append under the ingest lock ---

func checkIngestLock(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			locks := lockCalls(pass, fd.Body)
			annotated := fd.Doc != nil && requiresRE.MatchString(fd.Doc.Text())
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !strings.HasPrefix(sel.Sel.Name, "Append") {
					return true
				}
				if !isStoreType(pass, pass.TypesInfo.TypeOf(sel.X)) {
					return true
				}
				if annotated {
					return true
				}
				base := types.ExprString(sel.X)
				owner := ""
				if i := strings.LastIndex(base, "."); i >= 0 {
					owner = base[:i]
				}
				if owner == "" {
					// A bare store variable: exempt only when it is a
					// function-local (fresh, unpublished) store.
					if locallyDeclared(pass, sel.X, fd) {
						return true
					}
				} else if lockedBefore(locks, owner+"."+IngestMutex, call.Pos()) {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s.%s outside the ingest lock: WAL order must equal mutation order — lock %s.%s first (or annotate the method cqads:requires-lock %s)",
					StoreTypeName, sel.Sel.Name, nonEmpty(owner, "the owner"), IngestMutex, IngestMutex)
				return true
			})
		}
	}
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

func isStoreType(pass *analysis.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != StoreTypeName || obj.Pkg() == nil {
		return false
	}
	return has(obj.Pkg().Path(), PersistPkgs)
}

type lockCall struct {
	base string
	pos  token.Pos
}

// lockCalls collects every non-deferred sync Lock() acquisition in
// body, by rendered receiver chain ("p.mu").
func lockCalls(pass *analysis.Pass, body *ast.BlockStmt) []lockCall {
	var out []lockCall
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return true
		}
		fn, ok := selection.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		out = append(out, lockCall{base: types.ExprString(sel.X), pos: call.Pos()})
		return true
	})
	return out
}

func lockedBefore(locks []lockCall, chain string, pos token.Pos) bool {
	for _, l := range locks {
		if l.base == chain && l.pos < pos {
			return true
		}
	}
	return false
}

func locallyDeclared(pass *analysis.Pass, base ast.Expr, fd *ast.FuncDecl) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	return obj != nil && obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
}

// --- Rule 2: snapshot/truncate/fsync ordering ---

// fileCall is one (*os.File) method call, by rendered receiver.
type fileCall struct {
	base string
	name string
	pos  token.Pos
}

func checkCheckpointOrdering(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var fileOps []fileCall
			var snapWrites []token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					for _, w := range SnapshotWriters {
						if fun.Name == w {
							snapWrites = append(snapWrites, call.Pos())
						}
					}
				case *ast.SelectorExpr:
					if isOSFileMethod(pass, fun) {
						fileOps = append(fileOps, fileCall{
							base: types.ExprString(fun.X),
							name: fun.Sel.Name,
							pos:  call.Pos(),
						})
					}
				}
				return true
			})
			for _, op := range fileOps {
				switch op.name {
				case "Truncate":
					// In a function that also publishes a snapshot, the
					// snapshot write must precede the truncation.
					for _, sw := range snapWrites {
						if op.pos < sw {
							pass.Reportf(op.pos,
								"WAL truncated before the snapshot covering it is published; a crash in between loses acknowledged writes — write the snapshot first")
							break
						}
					}
					if !syncedAfter(fileOps, op) {
						pass.Reportf(op.pos,
							"truncated file %s is never fsynced in this function; call %s.Sync() so the truncation is durable",
							op.base, op.base)
					}
				case "Write", "WriteString", "WriteAt":
					if !syncedAfter(fileOps, op) {
						pass.Reportf(op.pos,
							"file %s is written but never fsynced in this function; durability claims require %s.Sync() before returning",
							op.base, op.base)
					}
				}
			}
		}
	}
}

func isOSFileMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "File"
}

func syncedAfter(ops []fileCall, op fileCall) bool {
	for _, o := range ops {
		if o.base == op.base && o.name == "Sync" && o.pos > op.pos {
			return true
		}
	}
	return false
}
