// Fixture for detorder: order-sensitive work inside range-over-map.
package a

import (
	"fmt"
	"sort"
	"strings"
)

// Float accumulation straight out of a map range — the JBBSM bug.
func sumScores(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // the body, not the range, is reported
		total += v // want `floating-point accumulation into total`
	}
	return total
}

// Spelled without +=, still the same accumulation.
func sumScoresLong(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation into total`
	}
	return total
}

// Integer counting is exact and commutative: not flagged.
func countRows(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// A per-iteration local resets each pass: not flagged.
func perIteration(m map[string][]float64) []float64 {
	var out []float64
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		_ = s
	}
	sort.Float64s(out)
	return out
}

// Result slice built in map order and never sorted.
func collectValues(m map[string]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `append to out inside range over map`
	}
	return out
}

// The canonical fix — collect keys, sort, iterate sorted: not flagged.
func collectSorted(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Output written straight from a map range.
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println output inside range over map`
	}
}

// Writer-method output from a map range.
func render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString output inside range over map`
	}
	return b.String()
}

// Accumulation into an element indexed by the range's own key: each
// iteration touches a distinct element, so order cannot matter.
func perKeyAccum(docs map[string]float64, sums map[string]float64) {
	for k, v := range docs {
		sums[k] += v
		sums[k] = sums[k] + v
	}
}

// Indexing by something other than the key is order-sensitive again.
func wrongKeyAccum(m map[string]float64, sums []float64) {
	for _, v := range m {
		sums[0] += v // want `floating-point accumulation into sums\[0\]`
	}
}

// Range over a slice: order is defined, nothing to flag.
func sumSlice(vs []float64) float64 {
	var total float64
	for _, v := range vs {
		total += v
	}
	return total
}

// Float accumulation hidden in a closure still outlives an iteration.
func closureAccum(m map[string]float64) float64 {
	var total float64
	add := func(v float64) { total += v }
	for _, v := range m {
		add(v)
		total += v // want `floating-point accumulation into total`
	}
	return total
}
