// Fixture for detorder scoping: this package is NOT in the
// deterministic set, so the same shapes that fire in fixture "a" must
// stay silent here.
package b

func sumScores(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
