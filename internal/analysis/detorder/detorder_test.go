package detorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detorder"
)

func TestDetOrder(t *testing.T) {
	defer func(old []string) { detorder.DeterministicPkgs = old }(detorder.DeterministicPkgs)
	detorder.DeterministicPkgs = append(detorder.DeterministicPkgs, "a")
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), detorder.Analyzer)
}

// TestNonDeterministicPackageIsExempt proves the scoping: identical
// shapes outside the declared-deterministic set produce no findings.
func TestNonDeterministicPackageIsExempt(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "b"), detorder.Analyzer)
}
