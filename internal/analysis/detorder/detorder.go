// Package detorder flags order-sensitive work inside `for … range`
// over a map in the system's declared-deterministic packages — the
// exact bug class behind the FAQFinder figure drift fixed in PR 1 and
// the JBBSM Classify drift fixed again in PR 3: Go randomizes map
// iteration order, so accumulating floating-point sums, building
// result slices, or writing output directly from a map range produces
// run-to-run differences that break the system's bit-identical answer
// contract.
//
// Three body shapes are findings:
//
//   - a floating-point accumulation (`sum += v`, `sum = sum * v`, …)
//     into a variable declared outside the loop — float addition is
//     not associative, so visit order changes the bits;
//   - an append to a slice declared outside the loop that is never
//     passed to sort/slices ordering in the enclosing function
//     afterwards — the canonical fix (collect keys, sort, iterate
//     sorted) is recognized and NOT flagged;
//   - output written inside the body (the fmt print family, or
//     Write/WriteString method calls).
//
// Integer/string accumulation is exact and commutative, so it is not
// flagged; neither is accumulation into an element indexed by the
// range's own key (`m[k] += v`) — each iteration touches a distinct
// element, so visit order cannot change any element's result.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// DeterministicPkgs lists the import paths (exact, or prefix of a
// subpackage) whose answers must be bit-identical run to run. Tests
// append their fixture path.
var DeterministicPkgs = []string{
	"repro/internal/core",
	"repro/internal/rank",
	"repro/internal/classify",
	"repro/internal/sql",
	"repro/internal/dedup",
}

// Analyzer is the detorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "flags order-sensitive float/slice/output work inside range-over-map in deterministic packages",
	Run:  run,
}

func applies(path string) bool {
	for _, p := range DeterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !applies(pass.Pkg.Path()) {
		return nil
	}
	// visit walks body knowing its innermost enclosing function — the
	// scope the sorted-later exemption searches — recursing into
	// nested function literals with the tighter scope.
	var visit func(body ast.Node, enclosing ast.Node)
	visit = func(body ast.Node, enclosing ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				visit(n.Body, n)
				return false
			case *ast.RangeStmt:
				if isMapRange(pass, n) {
					checkMapRange(pass, n, enclosing)
				}
			}
			return true
		})
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd.Body, fd)
			}
		}
	}
	return nil
}

func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, enclosing ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rng, enclosing, n)
		case *ast.CallExpr:
			if msg := outputCall(pass, n); msg != "" {
				pass.Reportf(n.Pos(), "map iteration order is random: %s inside range over map; iterate in sorted key order", msg)
			}
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, enclosing ast.Node, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if isFloat(pass, lhs) && declaredOutside(pass, lhs, rng) && !keyedByRangeKey(pass, lhs, rng) {
				pass.Reportf(as.Pos(),
					"map iteration order is random: floating-point accumulation into %s inside range over map; sum in sorted key order",
					render(lhs))
			}
		}
	case token.ASSIGN, token.DEFINE:
		if len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, lhs := range as.Lhs {
			// x = append(x, ...) building a result outside the loop.
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				if declaredOutside(pass, lhs, rng) && !sortedLater(pass, lhs, rng, enclosing) {
					pass.Reportf(as.Pos(),
						"map iteration order is random: append to %s inside range over map with no later sort; sort the result (or iterate sorted keys)",
						render(lhs))
				}
				continue
			}
			// x = x + v float re-accumulation spelled without +=.
			if isFloat(pass, lhs) && declaredOutside(pass, lhs, rng) && !keyedByRangeKey(pass, lhs, rng) && selfReference(lhs, as.Rhs[i]) {
				pass.Reportf(as.Pos(),
					"map iteration order is random: floating-point accumulation into %s inside range over map; sum in sorted key order",
					render(lhs))
			}
		}
	}
}

// outputCall reports a human description when call writes output.
func outputCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
			if strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint") {
				return "fmt." + sel.Sel.Name + " output"
			}
			return ""
		}
	}
	if sel.Sel.Name == "Write" || sel.Sel.Name == "WriteString" {
		// A method named Write/WriteString on anything — the io.Writer
		// convention is strong enough that a name match is the signal.
		if _, ok := pass.TypesInfo.Selections[sel]; ok {
			return sel.Sel.Name + " output"
		}
	}
	return ""
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObject resolves the variable an lvalue ultimately names: the
// identifier itself, or the base of a selector/index chain.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the lvalue's root variable outlives
// one loop iteration — i.e. was not declared inside the range body.
// A per-iteration local resets every pass, so order cannot leak out
// through it.
func declaredOutside(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	obj := rootObject(pass, e)
	if obj == nil {
		// Fields and unresolvable bases are conservatively treated as
		// outliving the loop.
		return true
	}
	return obj.Pos() < rng.Body.Pos() || obj.Pos() > rng.Body.End()
}

// keyedByRangeKey reports whether the lvalue is an index expression
// whose index involves the range's own key variable: `m[k] += v`
// inside `for k := range …` touches a distinct element every
// iteration, so visit order cannot change any element's final value.
func keyedByRangeKey(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := pass.TypesInfo.Defs[keyID]
	if keyObj == nil {
		keyObj = pass.TypesInfo.Uses[keyID]
	}
	if keyObj == nil {
		return false
	}
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == keyObj {
			found = true
			return false
		}
		return true
	})
	return found
}

// selfReference reports whether rhs mentions the lhs expression — the
// `x = x + v` accumulation shape.
func selfReference(lhs, rhs ast.Expr) bool {
	target := render(lhs)
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && render(e) == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// sortedLater reports whether, after the range statement, the
// enclosing function passes the appended-to variable into a sort/
// slices ordering call — the canonical collect-then-sort fix.
func sortedLater(pass *analysis.Pass, lhs ast.Expr, rng *ast.RangeStmt, enclosing ast.Node) bool {
	if enclosing == nil {
		return false
	}
	obj := rootObject(pass, lhs)
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		// Any argument mentioning the object counts, including through
		// a conversion like sort.Sort(byName(out)).
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					sorted = true
					return false
				}
				return true
			})
		}
		return true
	})
	return sorted
}

func render(e ast.Expr) string {
	return types.ExprString(e)
}
