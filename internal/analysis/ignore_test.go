package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var knownAnalyzers = map[string]bool{"wallclock": true, "detorder": true}

// parse builds a Package (Files + Sources only — the directive
// machinery is purely syntactic) from one in-memory file.
func parse(t *testing.T, fset *token.FileSet, src string) *analysis.Package {
	t.Helper()
	const name = "fixture.go"
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &analysis.Package{
		Name:    f.Name.Name,
		Path:    f.Name.Name,
		Files:   []*ast.File{f},
		Sources: map[string][]byte{name: []byte(src)},
	}
}

func collect(t *testing.T, src string) (*analysis.Directives, []analysis.Finding, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	pkg := parse(t, fset, src)
	ds, bad := analysis.CollectDirectives(fset, pkg, knownAnalyzers)
	return ds, bad, fset
}

func findingAt(fset *token.FileSet, file string, line int, msg string) analysis.Finding {
	return analysis.Finding{
		Analyzer: "wallclock",
		Position: token.Position{Filename: file, Line: line},
		Message:  msg,
	}
}

func TestDirectiveUnknownAnalyzer(t *testing.T) {
	_, bad, _ := collect(t, `package p

//lint:cqads-ignore nosuchcheck the reason does not save it
var x int
`)
	if len(bad) != 1 {
		t.Fatalf("got %d validation findings, want 1: %v", len(bad), bad)
	}
	f := bad[0]
	if f.Analyzer != analysis.DirectiveAnalyzer {
		t.Errorf("finding attributed to %q, want %q", f.Analyzer, analysis.DirectiveAnalyzer)
	}
	if !strings.Contains(f.Message, `unknown analyzer "nosuchcheck"`) {
		t.Errorf("message %q does not name the unknown analyzer", f.Message)
	}
}

func TestDirectiveMissingReason(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//lint:cqads-ignore wallclock\nvar x int\n",
		"package p\n\n//lint:cqads-ignore wallclock   \nvar x int\n",
		"package p\n\n//lint:cqads-ignore-file detorder\n",
	} {
		_, bad, _ := collect(t, src)
		if len(bad) != 1 {
			t.Fatalf("source %q: got %d findings, want 1: %v", src, len(bad), bad)
		}
		if !strings.Contains(bad[0].Message, "missing its reason") {
			t.Errorf("source %q: message %q does not flag the missing reason", src, bad[0].Message)
		}
	}
}

func TestDirectiveBareMalformed(t *testing.T) {
	_, bad, _ := collect(t, `package p

//lint:cqads-ignore
var x int
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "malformed cqads-ignore") {
		t.Fatalf("bare directive: got %v, want one malformed-directive finding", bad)
	}
}

func TestDirectiveInlineSuppressesSameLine(t *testing.T) {
	ds, bad, fset := collect(t, `package p

var x = 1 //lint:cqads-ignore wallclock fake timestamp for the test
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected validation findings: %v", bad)
	}
	in := []analysis.Finding{findingAt(fset, "fixture.go", 3, "time.Now in deterministic package")}
	if out := ds.Filter(in); len(out) != 0 {
		t.Errorf("inline directive did not suppress its own line: %v", out)
	}
	if unused := ds.Unused(); len(unused) != 0 {
		t.Errorf("fired directive reported unused: %v", unused)
	}
}

func TestDirectiveStandaloneSuppressesNextLine(t *testing.T) {
	ds, _, fset := collect(t, `package p

//lint:cqads-ignore wallclock fake timestamp for the test
var x = 1
`)
	same := findingAt(fset, "fixture.go", 3, "on the directive's own line")
	below := findingAt(fset, "fixture.go", 4, "on the guarded line")
	out := ds.Filter([]analysis.Finding{same, below})
	if len(out) != 1 || out[0].Position.Line != 3 {
		t.Errorf("standalone directive should guard only line 4; kept %v", out)
	}
}

func TestDirectiveWrongLineIsUnused(t *testing.T) {
	ds, _, fset := collect(t, `package p

//lint:cqads-ignore wallclock excuse aimed at the wrong line
var x = 1
var y = 2
`)
	// The real finding is two lines below the directive's target.
	in := []analysis.Finding{findingAt(fset, "fixture.go", 5, "time.Now")}
	if out := ds.Filter(in); len(out) != 1 {
		t.Fatalf("mis-aimed directive suppressed a finding it should not: %v", out)
	}
	unused := ds.Unused()
	if len(unused) != 1 {
		t.Fatalf("got %d unused-directive findings, want 1: %v", len(unused), unused)
	}
	if unused[0].Analyzer != analysis.DirectiveAnalyzer ||
		!strings.Contains(unused[0].Message, "suppresses nothing") {
		t.Errorf("unused finding = %v, want a cqadslint suppresses-nothing finding", unused[0])
	}
}

func TestDirectiveWrongAnalyzerDoesNotSuppress(t *testing.T) {
	ds, _, fset := collect(t, `package p

var x = 1 //lint:cqads-ignore detorder the wrong analyzer is named
`)
	in := []analysis.Finding{findingAt(fset, "fixture.go", 3, "time.Now")}
	if out := ds.Filter(in); len(out) != 1 {
		t.Errorf("directive for detorder suppressed a wallclock finding: %v", out)
	}
}

func TestDirectiveFileScope(t *testing.T) {
	ds, bad, fset := collect(t, `package p

//lint:cqads-ignore-file wallclock jitter package is exempt by design
var x = 1
var y = 2
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected validation findings: %v", bad)
	}
	in := []analysis.Finding{
		findingAt(fset, "fixture.go", 4, "time.Now"),
		findingAt(fset, "fixture.go", 5, "rand.Intn"),
	}
	if out := ds.Filter(in); len(out) != 0 {
		t.Errorf("file-scope directive left findings standing: %v", out)
	}
	// File-scope directives assert a policy; they are never "unused".
	ds2, _, _ := collect(t, `package p

//lint:cqads-ignore-file wallclock jitter package is exempt by design
var x = 1
`)
	if unused := ds2.Unused(); len(unused) != 0 {
		t.Errorf("idle file-scope directive reported unused: %v", unused)
	}
}

func TestDirectiveCannotSuppressValidator(t *testing.T) {
	ds, _, fset := collect(t, `package p

var x = 1 //lint:cqads-ignore wallclock trying to silence the validator
`)
	in := []analysis.Finding{{
		Analyzer: analysis.DirectiveAnalyzer,
		Position: token.Position{Filename: "fixture.go", Line: 3},
		Message:  "cqads-ignore wallclock suppresses nothing",
	}}
	if out := ds.Filter(in); len(out) != 1 {
		t.Errorf("a directive suppressed a cqadslint validation finding: %v", out)
	}
	_ = fset
}
