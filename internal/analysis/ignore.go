package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive. A finding the team has judged acceptable
// is silenced in place:
//
//	//lint:cqads-ignore <analyzer> <reason>
//
// An inline directive (trailing code on the same line) suppresses that
// line's findings from the named analyzer; a standalone directive (the
// comment is the whole line) suppresses the line directly below it.
// File scope exists for whole-file exemptions, conventionally placed
// right under the package clause:
//
//	//lint:cqads-ignore-file <analyzer> <reason>
//
// Directives are validated strictly, and a directive problem is itself
// a finding (attributed to the pseudo-analyzer "cqadslint"):
//
//   - the analyzer name must be one of the suite's analyzers,
//   - the reason must be non-empty,
//   - a line-scope directive must actually suppress something — a
//     stale or misplaced directive (wrong line) is an error, so
//     suppressions cannot rot silently when the code they excused
//     moves or is fixed.
const (
	ignorePrefix     = "//lint:cqads-ignore "
	ignoreFilePrefix = "//lint:cqads-ignore-file "
	// DirectiveAnalyzer attributes directive-validation findings.
	DirectiveAnalyzer = "cqadslint"
)

// A Directive is one parsed suppression.
type Directive struct {
	Analyzer string
	Reason   string
	// File is the directive's filename; Line the line it suppresses
	// (0 for file scope, which suppresses the whole file).
	File string
	Line int
	// Pos locates the directive itself, for unused-directive
	// reporting.
	Pos  token.Position
	used bool
}

// Directives is the suppression set for one package.
type Directives struct {
	ds []*Directive
}

// CollectDirectives parses every //lint:cqads-ignore[-file] comment in
// the package. Malformed directives (unknown analyzer, missing reason)
// are returned as findings. known maps valid analyzer names.
func CollectDirectives(fset *token.FileSet, pkg *Package, known map[string]bool) (*Directives, []Finding) {
	var set Directives
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, finding := parseDirective(fset, pkg, c, known)
				if finding != nil {
					bad = append(bad, *finding)
				}
				if d != nil {
					set.ds = append(set.ds, d)
				}
			}
		}
	}
	return &set, bad
}

func parseDirective(fset *token.FileSet, pkg *Package, c *ast.Comment, known map[string]bool) (*Directive, *Finding) {
	text := c.Text
	pos := fset.Position(c.Slash)
	fileScope := false
	var rest string
	switch {
	case strings.HasPrefix(text, ignoreFilePrefix):
		fileScope = true
		rest = strings.TrimPrefix(text, ignoreFilePrefix)
	case strings.HasPrefix(text, ignorePrefix):
		rest = strings.TrimPrefix(text, ignorePrefix)
	case text == strings.TrimSpace(ignorePrefix) || text == strings.TrimSpace(ignoreFilePrefix):
		// Bare directive: no analyzer, no reason.
		return nil, &Finding{
			Analyzer: DirectiveAnalyzer,
			Position: pos,
			Message:  "malformed cqads-ignore directive: want //lint:cqads-ignore <analyzer> <reason>",
		}
	default:
		return nil, nil // not a directive
	}
	name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
	reason = strings.TrimSpace(reason)
	if !known[name] {
		return nil, &Finding{
			Analyzer: DirectiveAnalyzer,
			Position: pos,
			Message:  fmt.Sprintf("cqads-ignore names unknown analyzer %q", name),
		}
	}
	if reason == "" {
		return nil, &Finding{
			Analyzer: DirectiveAnalyzer,
			Position: pos,
			Message:  fmt.Sprintf("cqads-ignore %s is missing its reason", name),
		}
	}
	d := &Directive{Analyzer: name, Reason: reason, File: pos.Filename, Pos: pos}
	if !fileScope {
		d.Line = pos.Line
		if standalone(pkg.Sources[pos.Filename], pos) {
			// The comment is the whole line: it guards the line below.
			d.Line = pos.Line + 1
		}
	}
	return d, nil
}

// standalone reports whether the comment at pos is the first
// non-whitespace content on its source line.
func standalone(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	// pos.Column is 1-based; everything before the comment on its line
	// must be blank.
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	for _, b := range src[start:pos.Offset] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}

// Filter drops the findings the directive set suppresses, marking the
// directives that fired. Directive-validation findings (analyzer
// "cqadslint") are never suppressible.
func (d *Directives) Filter(fs []Finding) []Finding {
	if d == nil || len(d.ds) == 0 {
		return fs
	}
	kept := fs[:0]
	for _, f := range fs {
		if f.Analyzer == DirectiveAnalyzer || !d.suppress(f) {
			kept = append(kept, f)
		}
	}
	return kept
}

func (d *Directives) suppress(f Finding) bool {
	hit := false
	for _, dir := range d.ds {
		if dir.Analyzer != f.Analyzer || dir.File != f.Position.Filename {
			continue
		}
		if dir.Line == 0 || dir.Line == f.Position.Line {
			dir.used = true
			hit = true
			// Keep scanning: several directives may target this line
			// and all of them deserve their "used" credit.
		}
	}
	return hit
}

// Unused reports every line-scope directive that suppressed nothing as
// a finding — a directive on the wrong line is indistinguishable from
// a stale one, and both are errors. File-scope directives are exempt:
// they assert a policy ("this file may use wall-clock time"), not the
// presence of a current finding.
func (d *Directives) Unused() []Finding {
	var fs []Finding
	for _, dir := range d.ds {
		if dir.used || dir.Line == 0 {
			continue
		}
		fs = append(fs, Finding{
			Analyzer: DirectiveAnalyzer,
			Position: dir.Pos,
			Message: fmt.Sprintf(
				"cqads-ignore %s suppresses nothing (wrong line, or the finding it excused is gone)",
				dir.Analyzer),
		})
	}
	return fs
}
