package wallclock_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wallclock"
)

func TestWallClock(t *testing.T) {
	defer func(old []string) { wallclock.DeterministicPkgs = old }(wallclock.DeterministicPkgs)
	wallclock.DeterministicPkgs = append(wallclock.DeterministicPkgs, "a")
	// RunWithDirectives: the fixture also proves a justified
	// //lint:cqads-ignore wallclock directive silences its site.
	analysistest.RunWithDirectives(t, filepath.Join("testdata", "src", "a"), wallclock.Analyzer)
}

// TestAllowlistedPackage proves lease/heartbeat/jitter code outside
// the deterministic set is untouched.
func TestAllowlistedPackage(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "b"), wallclock.Analyzer)
}
