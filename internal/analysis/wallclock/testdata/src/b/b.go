// Fixture for wallclock scoping: not a deterministic package, so
// clock reads are allowed — lease/heartbeat/jitter code lives in
// packages like this.
package b

import (
	"math/rand"
	"time"
)

func jitteredLease(t time.Duration) time.Duration {
	return t + time.Duration(rand.Int63n(int64(t)/2+1))
}

func expired(deadline time.Time) bool {
	return time.Now().After(deadline)
}
