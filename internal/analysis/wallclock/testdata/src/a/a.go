// Fixture for wallclock: clock and randomness reads in a
// deterministic package.
package a

import (
	"math/rand"
	"time"
)

func elapsed() time.Duration {
	start := time.Now() // want `time.Now makes answers depend on when they run`
	work()
	return time.Since(start) // want `time.Since makes answers depend on when they run`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time.Until makes answers depend on when they run`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle breaks bit-identical answers`
}

// Duration arithmetic, formatting and parsing never read the clock:
// not flagged.
func pureTime(d time.Duration) (string, time.Duration, time.Time) {
	t := time.Unix(0, 42).UTC()
	return t.Format(time.RFC3339), d * 2, t.Add(d)
}

// A justified suppression keeps the site but silences the finding.
func seededBaseline(seed int64, xs []int) {
	//lint:cqads-ignore wallclock seeded deterministic shuffle, the paper's Random baseline
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func work() {}
