// Package wallclock bans wall-clock and randomness sources in the
// system's declared-deterministic packages: bit-identical answers
// cannot depend on time.Now/Since/Until or math/rand. The durability,
// lease/heartbeat and jitter machinery legitimately needs both —
// internal/failover is simply outside the deterministic set, and the
// few sites inside it (result latency metadata, checkpoint
// timestamps, the paper's seeded Random ranking baseline) carry
// justified //lint:cqads-ignore wallclock directives instead.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// DeterministicPkgs lists the import paths (exact, or prefix of a
// subpackage) whose answers must be bit-identical run to run. Tests
// append their fixture path.
var DeterministicPkgs = []string{
	"repro/internal/core",
	"repro/internal/rank",
	"repro/internal/classify",
	"repro/internal/sql",
	"repro/internal/dedup",
}

// bannedTimeFuncs are the package-time functions that read the wall
// clock. Constructors like time.Duration arithmetic and formatting are
// fine — only the clock reads are banned.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// randPkgs are the randomness sources banned wholesale.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "bans time.Now/Since/Until and math/rand in deterministic query-path packages",
	Run:  run,
}

func applies(path string) bool {
	for _, p := range DeterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !applies(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pn.Imported().Path(); {
			case path == "time" && bannedTimeFuncs[sel.Sel.Name]:
				pass.Reportf(sel.Pos(),
					"wall clock in deterministic package: time.%s makes answers depend on when they run",
					sel.Sel.Name)
			case randPkgs[path]:
				pass.Reportf(sel.Pos(),
					"randomness in deterministic package: %s.%s breaks bit-identical answers",
					pn.Name(), sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
