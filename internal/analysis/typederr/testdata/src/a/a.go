// Fixture for typederr rule 1 and 2: the HTTP boundary.
package a

import (
	"errors"
	"fmt"
	"net/http"
)

// Declaring typed errors at package level is exactly right.
var errExpired = errors.New("listing expired")

// The blessed path: everything through jsonError.
func handleOK(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("q") == "" {
		jsonError(w, http.StatusBadRequest, "missing q parameter")
	}
}

// http.Error leaks a text/plain 400 into the JSON API.
func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "bad request", http.StatusBadRequest) // want `http.Error bypasses the typed-error status mapping`
}

// Handlers must not mint their own untyped errors.
func handleMint(w http.ResponseWriter, r *http.Request) {
	err := fmt.Errorf("unparseable body on %s", r.URL.Path) // want `boundary must not mint untyped errors`
	_ = err
	jsonError(w, http.StatusBadRequest, "bad body")
}

func handleMintNew(w http.ResponseWriter, _ *http.Request) {
	err := errors.New("boundary condition") // want `boundary must not mint untyped errors`
	_ = err
}

// Helpers without a ResponseWriter are not the boundary.
func validate(q string) error {
	if q == "" {
		return fmt.Errorf("empty question")
	}
	return nil
}

func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":%q}`, fmt.Sprintf(format, args...))
}
