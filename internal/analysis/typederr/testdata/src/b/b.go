// Fixture for typederr rule 3: exported core APIs must return typed
// errors for conditions that already have one.
package b

import (
	"errors"
	"fmt"
)

// The typed conditions.
var (
	ErrNotHosted  = errors.New("b: domain is not hosted by this shard")
	ErrOverloaded = errors.New("b: node overloaded")
)

// Spelling the condition as a fresh error hides it from errors.Is.
func Ingest(domain string) error {
	if domain == "cars" {
		return fmt.Errorf("domain %q is not hosted here", domain) // want `condition "not hosted" already has typed error ErrNotHosted`
	}
	return nil
}

func Admit(backlog int) error {
	if backlog > 100 {
		return errors.New("ingest overloaded, retry later") // want `condition "overloaded" already has typed error ErrOverloaded`
	}
	return nil
}

// Wrapping the typed error with %w is the blessed form.
func IngestWrapped(domain string) error {
	if domain == "cars" {
		return fmt.Errorf("domain %q: %w", domain, ErrNotHosted)
	}
	return nil
}

// Returning the typed error directly is also fine.
func AdmitTyped(backlog int) error {
	if backlog > 100 {
		return ErrOverloaded
	}
	return nil
}

// Messages without a typed condition stay free-form.
func Open(path string) error {
	if path == "" {
		return fmt.Errorf("empty path")
	}
	return nil
}

// Unexported helpers are outside the exported contract.
func hosted(domain string) error {
	return fmt.Errorf("domain %q is not hosted here", domain)
}
