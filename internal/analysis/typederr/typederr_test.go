package typederr_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/typederr"
)

func TestBoundary(t *testing.T) {
	defer func(old []string) { typederr.WebUIPkgs = old }(typederr.WebUIPkgs)
	typederr.WebUIPkgs = append(typederr.WebUIPkgs, "a")
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), typederr.Analyzer)
}

func TestCoreTyped(t *testing.T) {
	defer func(old []string) { typederr.CorePkgs = old }(typederr.CorePkgs)
	typederr.CorePkgs = append(typederr.CorePkgs, "b")
	analysistest.Run(t, filepath.Join("testdata", "src", "b"), typederr.Analyzer)
}
