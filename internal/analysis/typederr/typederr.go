// Package typederr enforces the system's error contract at its two
// edges.
//
// At the HTTP boundary (the webui package), every error must flow
// through jsonError and its errors.Is/As status mapping
// (ErrNotHosted→421, ErrOverloaded→429, ErrDurabilityLost→503, …):
// a direct http.Error call bypasses the mapping and leaks text/plain
// 400s into a JSON API, and a handler that mints its own error with
// fmt.Errorf/errors.New manufactures an untyped condition the mapping
// can never classify.
//
// In the core package, exported functions must not spell an
// already-typed condition as a bare fmt.Errorf/errors.New: the wire
// mapping works by errors.Is, so "domain %q is not hosted" as a fresh
// error is invisible to it — return the typed error, or wrap it with
// %w. The condition-to-typed-error table is keyword-driven
// (TypedErrors) so new typed errors extend the check with one line.
package typederr

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// WebUIPkgs are the HTTP-boundary packages (rule 1 and 2). Tests
// append their fixture path.
var WebUIPkgs = []string{"repro/internal/webui"}

// CorePkgs are the packages whose exported API must return typed
// errors for typed conditions (rule 3). Tests append their fixture
// path.
var CorePkgs = []string{"repro/internal/core"}

// TypedErrors maps a lowercase message keyword to the typed error
// that already expresses the condition. A bare fmt.Errorf/errors.New
// in an exported core function whose message contains the keyword —
// without wrapping the typed error — is a finding.
var TypedErrors = map[string]string{
	"not hosted":         "ErrNotHosted",
	"read-only":          "ErrReadOnlyReplica",
	"read only":          "ErrReadOnlyReplica",
	"overloaded":         "ErrOverloaded",
	"durability":         "ErrDurabilityLost",
	"quorum unavailable": "ErrQuorumUnavailable",
	"not the leader":     "ErrNotLeader",
}

// Analyzer is the typederr pass.
var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc:  "webui must map errors through jsonError; exported core APIs must return typed errors for typed conditions",
	Run:  run,
}

func has(path string, pkgs []string) bool {
	for _, p := range pkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	if has(pass.Pkg.Path(), WebUIPkgs) {
		checkBoundary(pass)
	}
	if has(pass.Pkg.Path(), CorePkgs) {
		checkCoreTyped(pass)
	}
	return nil
}

// checkBoundary bans http.Error everywhere in the package and
// fmt.Errorf/errors.New inside handler bodies (any function with an
// http.ResponseWriter parameter).
func checkBoundary(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if calleeIs(pass, call, "net/http", "Error") {
				pass.Reportf(call.Pos(),
					"http.Error bypasses the typed-error status mapping; use jsonError so ErrNotHosted/ErrOverloaded/ErrDurabilityLost map to 421/429/503")
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasResponseWriterParam(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if calleeIs(pass, call, "fmt", "Errorf") || calleeIs(pass, call, "errors", "New") {
					pass.Reportf(call.Pos(),
						"boundary must not mint untyped errors: map the underlying error through jsonError, or return a typed core error")
				}
				return true
			})
		}
	}
}

// checkCoreTyped flags bare fmt.Errorf/errors.New in exported
// functions whose message spells a condition that already has a typed
// error.
func checkCoreTyped(pass *analysis.Pass) {
	keywords := make([]string, 0, len(TypedErrors))
	for k := range TypedErrors {
		keywords = append(keywords, k)
	}
	sort.Strings(keywords)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !ast.IsExported(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !calleeIs(pass, call, "fmt", "Errorf") && !calleeIs(pass, call, "errors", "New") {
					return true
				}
				msg, ok := literalArg(call)
				if !ok || wrapsTypedError(call) {
					return true
				}
				lower := strings.ToLower(msg)
				for _, kw := range keywords {
					if strings.Contains(lower, kw) {
						pass.Reportf(call.Pos(),
							"condition %q already has typed error %s; return it (or wrap it with %%w) so errors.Is keeps working",
							kw, TypedErrors[kw])
						break
					}
				}
				return true
			})
		}
	}
}

// calleeIs reports whether call invokes pkgPath.name.
func calleeIs(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// hasResponseWriterParam reports whether fd takes an
// http.ResponseWriter — the handler signature marker.
func hasResponseWriterParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(p.Type)
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter" {
			return true
		}
	}
	return false
}

// literalArg extracts the call's first argument when it is a string
// literal (the fmt.Errorf format / errors.New message).
func literalArg(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// wrapsTypedError reports whether any argument references an Err*
// identifier — the %w-wraps-the-typed-error escape hatch.
func wrapsTypedError(call *ast.CallExpr) bool {
	for _, arg := range call.Args[1:] {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && strings.HasPrefix(id.Name, "Err") {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
