package qlog

import (
	"sort"
	"testing"

	"repro/internal/schema"
)

func carsSim() *Simulator { return NewSimulator(schema.Cars(), 7) }

func TestSimulatorCoversAllTypeIValues(t *testing.T) {
	sim := carsSim()
	s := schema.Cars()
	want := 0
	for _, a := range s.AttrsOfType(schema.TypeI) {
		want += len(a.Values)
	}
	if got := len(sim.Values()); got != want {
		t.Errorf("Values = %d, want %d", got, want)
	}
}

func TestTrueAffinityProperties(t *testing.T) {
	sim := carsSim()
	vals := sim.Values()
	for _, a := range vals {
		if sim.TrueAffinity(a, a) != 1 {
			t.Errorf("self-affinity of %q != 1", a)
		}
		for _, b := range vals {
			aff := sim.TrueAffinity(a, b)
			if aff < 0 || aff > 1 {
				t.Errorf("affinity(%q,%q) = %g out of range", a, b, aff)
			}
			if aff != sim.TrueAffinity(b, a) {
				t.Errorf("affinity not symmetric for %q,%q", a, b)
			}
		}
	}
}

func TestSimulateStructure(t *testing.T) {
	sim := carsSim()
	log := sim.Simulate("cars", 50)
	if log.Domain != "cars" || len(log.Sessions) != 50 {
		t.Fatalf("log = %d sessions in %q", len(log.Sessions), log.Domain)
	}
	seen := map[string]bool{}
	for _, sess := range log.Sessions {
		if seen[sess.UserID] {
			t.Fatalf("duplicate user id %q", sess.UserID)
		}
		seen[sess.UserID] = true
		if len(sess.Events) < 2 {
			t.Fatalf("session %q has %d events", sess.UserID, len(sess.Events))
		}
		lastAt := -1.0
		for _, ev := range sess.Events {
			if ev.At <= lastAt {
				t.Fatalf("timestamps not increasing in %q", sess.UserID)
			}
			lastAt = ev.At
			for _, c := range ev.Clicks {
				if c.Rank < 1 || c.Dwell <= 0 {
					t.Fatalf("bad click %+v", c)
				}
			}
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := NewSimulator(schema.Cars(), 7).Simulate("cars", 10)
	b := NewSimulator(schema.Cars(), 7).Simulate("cars", 10)
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatal("lengths differ")
	}
	for i := range a.Sessions {
		if len(a.Sessions[i].Events) != len(b.Sessions[i].Events) {
			t.Fatalf("session %d differs", i)
		}
		for j := range a.Sessions[i].Events {
			if a.Sessions[i].Events[j].Query != b.Sessions[i].Events[j].Query {
				t.Fatalf("event %d/%d differs", i, j)
			}
		}
	}
}

func TestTIMatrixBounds(t *testing.T) {
	sim := carsSim()
	m := BuildTIMatrix(sim.Simulate("cars", 300))
	if m.Max() <= 0 || m.Max() > 5 {
		t.Fatalf("Max = %g, want (0,5] (Eq. 3 sums five [0,1] features)", m.Max())
	}
	for _, p := range m.Pairs() {
		s := m.Sim(p[0], p[1])
		if s < 0 || s > 5 {
			t.Errorf("TI_Sim(%v) = %g out of [0,5]", p, s)
		}
		if m.Sim(p[0], p[1]) != m.Sim(p[1], p[0]) {
			t.Errorf("TI_Sim not symmetric for %v", p)
		}
		n := m.NormSim(p[0], p[1])
		if n < 0 || n > 1 {
			t.Errorf("NormSim(%v) = %g", p, n)
		}
	}
	if m.Sim("camry", "camry") != m.Max() {
		t.Error("self-similarity should be Max()")
	}
	if m.Sim("camry", "never-seen-value") != 0 {
		t.Error("unknown pair should be 0")
	}
}

// TestTIMatrixRecoversAffinity checks that the log→matrix pipeline
// recovers the latent structure: across many pairs, higher true
// affinity should mean higher TI_Sim (rank correlation clearly
// positive).
func TestTIMatrixRecoversAffinity(t *testing.T) {
	sim := carsSim()
	m := BuildTIMatrix(sim.Simulate("cars", 2000))
	vals := sim.Values()
	type pair struct{ aff, ti float64 }
	var pairs []pair
	for i, a := range vals {
		for _, b := range vals[i+1:] {
			pairs = append(pairs, pair{aff: sim.TrueAffinity(a, b), ti: m.Sim(a, b)})
		}
	}
	// Spearman-style check: sort by affinity, compare mean TI_Sim of
	// the top third against the bottom third.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].aff < pairs[j].aff })
	third := len(pairs) / 3
	low, high := 0.0, 0.0
	for i := 0; i < third; i++ {
		low += pairs[i].ti
		high += pairs[len(pairs)-1-i].ti
	}
	if high <= low*1.5 {
		t.Errorf("TI-matrix failed to recover affinity: low-third %g vs high-third %g", low/float64(third), high/float64(third))
	}
}
