// Package qlog simulates the ads-search-engine query logs the paper
// mines for Type I similarity, and builds the TI-matrix from them
// exactly per Eq. 3: TI_Sim(A,B) is the max-normalized sum of five
// log-derived features — query modifications Mod(A,B), submission
// proximity Time(A,B), dwell time Ad_Time(A,B), engine rank
// Rank(A,B), and clicks Click(A,B).
//
// The log itself is synthetic (the paper used logs from local ads
// search engines we do not have): a latent-affinity model places
// every Type I value in a small embedding space, and simulated users
// browse related values with probability driven by that affinity.
// The TI-matrix construction consumes only the log, so the paper's
// pipeline — log → features → normalized sum — is preserved intact.
package qlog

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/schema"
)

// Click is one clicked result inside a query event.
type Click struct {
	// Value is the Type I attribute value the clicked ad showcases.
	Value string
	// Rank is the 1-based rank the engine gave the ad.
	Rank int
	// Dwell is the seconds the user spent on the ad page.
	Dwell float64
}

// Event is one query submission in a session.
type Event struct {
	// Query is the Type I value the user searched for.
	Query string
	// At is the submission time, in seconds from session start.
	At float64
	// Clicks are the results the user clicked.
	Clicks []Click
}

// Session is one user's sustained activity period. Each session has a
// unique anonymous user ID, per the paper's log format.
type Session struct {
	UserID string
	Events []Event
}

// Log is a full query log for one ads domain.
type Log struct {
	Domain   string
	Sessions []Session
}

// Simulator generates query logs over a domain's Type I values.
type Simulator struct {
	rng      *rand.Rand
	values   []string
	emb      map[string][2]float64
	affinity map[[2]string]float64
}

// NewSimulator builds the latent-affinity model for s's Type I
// values: each value gets a deterministic position in a 2-D latent
// space; affinity decays exponentially with distance. Values of
// different Type I attributes may still be affine (a Camry and an
// Accord are both mid-size sedans), which is exactly the cross-value
// relatedness the TI-matrix exists to capture.
func NewSimulator(s *schema.Schema, seed int64) *Simulator {
	rng := rand.New(rand.NewSource(seed))
	sim := &Simulator{
		rng:      rng,
		emb:      make(map[string][2]float64),
		affinity: make(map[[2]string]float64),
	}
	for _, a := range s.AttrsOfType(schema.TypeI) {
		for _, v := range a.Values {
			sim.values = append(sim.values, v)
			sim.emb[v] = [2]float64{rng.Float64(), rng.Float64()}
		}
	}
	for _, a := range sim.values {
		for _, b := range sim.values {
			if a == b {
				continue
			}
			d := dist(sim.emb[a], sim.emb[b])
			sim.affinity[[2]string{a, b}] = math.Exp(-3 * d)
		}
	}
	return sim
}

// TrueAffinity exposes the latent relatedness of two values in [0,1].
// The appraiser oracle uses it as ground truth; the TI-matrix must
// recover it from the log alone.
func (s *Simulator) TrueAffinity(a, b string) float64 {
	if a == b {
		return 1
	}
	return s.affinity[[2]string{a, b}]
}

// Values returns the Type I values covered by the simulator.
func (s *Simulator) Values() []string { return s.values }

// Simulate produces a log with n sessions. Each session follows one
// user who searches for a seed value and then browses: related values
// are re-queried sooner, their ads are ranked higher, clicked more,
// and read longer — planting the five Eq. 3 signals.
func (s *Simulator) Simulate(domain string, n int) *Log {
	log := &Log{Domain: domain}
	for i := 0; i < n; i++ {
		log.Sessions = append(log.Sessions, s.session(i))
	}
	return log
}

func (s *Simulator) session(i int) Session {
	sess := Session{UserID: fmt.Sprintf("u%06d", i)}
	cur := s.values[s.rng.Intn(len(s.values))]
	t := 0.0
	steps := 2 + s.rng.Intn(4)
	for step := 0; step < steps; step++ {
		ev := Event{Query: cur, At: t}
		// The engine ranks ads for related values higher; the user
		// clicks 0-3 ads, preferring related ones, and dwells longer
		// on them.
		for c := 0; c < 3; c++ {
			target := s.weightedPick(cur)
			aff := s.TrueAffinity(cur, target)
			if s.rng.Float64() > 0.25+0.65*aff {
				continue
			}
			rank := 1 + int((1-aff)*8) + s.rng.Intn(3)
			dwell := 10 + 160*aff + s.rng.Float64()*25
			ev.Clicks = append(ev.Clicks, Click{Value: target, Rank: rank, Dwell: dwell})
		}
		sess.Events = append(sess.Events, ev)
		// Next query: modify toward a related value. Related
		// modifications happen sooner.
		next := s.weightedPick(cur)
		gap := 20 + (1-s.TrueAffinity(cur, next))*300 + s.rng.Float64()*40
		t += gap
		cur = next
	}
	return sess
}

// weightedPick selects a value with probability proportional to its
// affinity with cur (plus uniform noise so unrelated pairs appear in
// the log too).
func (s *Simulator) weightedPick(cur string) string {
	total := 0.0
	for _, v := range s.values {
		if v == cur {
			continue
		}
		total += 0.05 + s.TrueAffinity(cur, v)
	}
	r := s.rng.Float64() * total
	for _, v := range s.values {
		if v == cur {
			continue
		}
		r -= 0.05 + s.TrueAffinity(cur, v)
		if r <= 0 {
			return v
		}
	}
	return s.values[len(s.values)-1]
}

func dist(a, b [2]float64) float64 {
	dx, dy := a[0]-b[0], a[1]-b[1]
	return math.Sqrt(dx*dx + dy*dy)
}
