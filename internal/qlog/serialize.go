package qlog

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file persists query logs and TI-matrices as JSON, so the
// artifacts of the add-a-domain workflow (Sec. 4.6) survive process
// restarts and can be inspected or shipped alongside ads data.

// WriteJSON serializes the log.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(l); err != nil {
		return fmt.Errorf("qlog: encoding log: %w", err)
	}
	return nil
}

// ReadLogJSON deserializes a log written by WriteJSON.
func ReadLogJSON(r io.Reader) (*Log, error) {
	var l Log
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("qlog: decoding log: %w", err)
	}
	return &l, nil
}

// tiMatrixJSON is the serialized TI-matrix shape: pairs are flattened
// for a stable, diff-friendly encoding.
type tiMatrixJSON struct {
	Max   float64      `json:"max"`
	Pairs []tiPairJSON `json:"pairs"`
}

type tiPairJSON struct {
	A   string  `json:"a"`
	B   string  `json:"b"`
	Sim float64 `json:"sim"`
}

// WriteJSON serializes the matrix with pairs in descending-similarity
// order.
func (m *TIMatrix) WriteJSON(w io.Writer) error {
	out := tiMatrixJSON{Max: m.max}
	for _, p := range m.Pairs() {
		out.Pairs = append(out.Pairs, tiPairJSON{A: p[0], B: p[1], Sim: m.sim[p]})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("qlog: encoding TI-matrix: %w", err)
	}
	return nil
}

// ReadTIMatrixJSON deserializes a matrix written by WriteJSON.
func ReadTIMatrixJSON(r io.Reader) (*TIMatrix, error) {
	var in tiMatrixJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("qlog: decoding TI-matrix: %w", err)
	}
	m := &TIMatrix{sim: make(map[[2]string]float64, len(in.Pairs)), max: in.Max}
	for _, p := range in.Pairs {
		a, b := p.A, p.B
		if a > b {
			a, b = b, a
		}
		m.sim[[2]string{a, b}] = p.Sim
	}
	return m, nil
}
