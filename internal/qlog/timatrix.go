package qlog

import "sort"

// TIMatrix holds TI_Sim values between Type I attribute values of one
// ads domain (Sec. 4.3.2). Values are symmetric; Sim(a,a) is defined
// as Max() so self-similarity ranks above any cross-value similarity.
type TIMatrix struct {
	sim map[[2]string]float64
	max float64
}

// feature accumulators per ordered pair, folded symmetrically at the
// end ("A is modified to B ... or vice versa").
type pairStats struct {
	mod     int     // # times A modified to B in consecutive queries
	gapSum  float64 // sum of submission gaps between A and B
	gapN    int
	dwell   float64 // total dwell on B's ads when A searched
	dwellN  int
	rankSum float64 // sum of reciprocal ranks of B's ads under query A
	rankN   int
	clicks  int // # clicks on B's ads when A searched
}

// BuildTIMatrix computes the TI-matrix from a query log per Eq. 3.
// Each of the five features is first averaged/counted per pair, then
// normalized by its maximum over the log so every factor lies in
// [0,1]; TI_Sim is their sum (range [0,5]).
//
// Time(A,B) is converted to a proximity (shorter average gaps score
// higher) before normalization, since Eq. 3 sums features oriented so
// that larger means more similar.
func BuildTIMatrix(log *Log) *TIMatrix {
	stats := map[[2]string]*pairStats{}
	get := func(a, b string) *pairStats {
		if a > b {
			a, b = b, a
		}
		k := [2]string{a, b}
		p := stats[k]
		if p == nil {
			p = &pairStats{}
			stats[k] = p
		}
		return p
	}
	for _, sess := range log.Sessions {
		for i, ev := range sess.Events {
			// Mod + Time: consecutive query pairs within the session.
			if i+1 < len(sess.Events) {
				next := sess.Events[i+1]
				if next.Query != ev.Query {
					p := get(ev.Query, next.Query)
					p.mod++
					p.gapSum += next.At - ev.At
					p.gapN++
				}
			}
			// Ad_Time + Rank + Click: clicked ads under this query.
			for _, c := range ev.Clicks {
				if c.Value == ev.Query {
					continue
				}
				p := get(ev.Query, c.Value)
				p.dwell += c.Dwell
				p.dwellN++
				if c.Rank > 0 {
					p.rankSum += 1 / float64(c.Rank)
					p.rankN++
				}
				p.clicks++
			}
		}
	}
	// Raw per-pair feature values.
	type raw struct{ mod, time, adTime, rank, click float64 }
	raws := map[[2]string]raw{}
	var maxes raw
	for k, p := range stats {
		var r raw
		r.mod = float64(p.mod)
		if p.gapN > 0 {
			avgGap := p.gapSum / float64(p.gapN)
			r.time = 1 / (1 + avgGap)
		}
		if p.dwellN > 0 {
			r.adTime = p.dwell / float64(p.dwellN)
		}
		if p.rankN > 0 {
			r.rank = p.rankSum / float64(p.rankN)
		}
		r.click = float64(p.clicks)
		raws[k] = r
		maxes.mod = maxf(maxes.mod, r.mod)
		maxes.time = maxf(maxes.time, r.time)
		maxes.adTime = maxf(maxes.adTime, r.adTime)
		maxes.rank = maxf(maxes.rank, r.rank)
		maxes.click = maxf(maxes.click, r.click)
	}
	m := &TIMatrix{sim: make(map[[2]string]float64, len(raws))}
	for k, r := range raws {
		s := norm(r.mod, maxes.mod) + norm(r.time, maxes.time) +
			norm(r.adTime, maxes.adTime) + norm(r.rank, maxes.rank) +
			norm(r.click, maxes.click)
		m.sim[k] = s
		if s > m.max {
			m.max = s
		}
	}
	return m
}

// Sim returns TI_Sim(a, b). Unknown pairs score 0; identical values
// score Max().
func (m *TIMatrix) Sim(a, b string) float64 {
	if a == b {
		return m.max
	}
	if a > b {
		a, b = b, a
	}
	return m.sim[[2]string{a, b}]
}

// Max returns the maximum TI_Sim in the matrix, the normalizer
// Rank_Sim divides by (Sec. 4.3.2).
func (m *TIMatrix) Max() float64 { return m.max }

// NormSim returns Sim(a,b) normalized to [0,1] by Max().
func (m *TIMatrix) NormSim(a, b string) float64 {
	if m.max == 0 {
		return 0
	}
	return m.Sim(a, b) / m.max
}

// Pairs returns all recorded pairs sorted by descending similarity,
// useful for diagnostics and tests.
func (m *TIMatrix) Pairs() [][2]string {
	out := make([][2]string, 0, len(m.sim))
	for k := range m.sim {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := m.sim[out[i]], m.sim[out[j]]
		if si != sj {
			return si > sj
		}
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func norm(v, max float64) float64 {
	if max == 0 {
		return 0
	}
	return v / max
}
