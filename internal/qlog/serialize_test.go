package qlog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/schema"
)

func TestLogJSONRoundTrip(t *testing.T) {
	sim := NewSimulator(schema.Cars(), 7)
	log := sim.Simulate("cars", 20)
	var buf bytes.Buffer
	if err := log.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLogJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != log.Domain || len(got.Sessions) != len(log.Sessions) {
		t.Fatalf("round trip lost sessions: %d vs %d", len(got.Sessions), len(log.Sessions))
	}
	for i := range log.Sessions {
		if got.Sessions[i].UserID != log.Sessions[i].UserID {
			t.Fatalf("session %d user differs", i)
		}
		if len(got.Sessions[i].Events) != len(log.Sessions[i].Events) {
			t.Fatalf("session %d events differ", i)
		}
	}
}

func TestTIMatrixJSONRoundTrip(t *testing.T) {
	sim := NewSimulator(schema.Cars(), 7)
	m := BuildTIMatrix(sim.Simulate("cars", 200))
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTIMatrixJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Max() != m.Max() {
		t.Fatalf("Max: %g vs %g", got.Max(), m.Max())
	}
	for _, p := range m.Pairs() {
		if got.Sim(p[0], p[1]) != m.Sim(p[0], p[1]) {
			t.Fatalf("pair %v differs", p)
		}
	}
	// A rebuilt matrix from the same log must match the round-trip.
	if len(got.Pairs()) != len(m.Pairs()) {
		t.Fatalf("pair counts differ")
	}
}

func TestReadLogJSONErrors(t *testing.T) {
	if _, err := ReadLogJSON(strings.NewReader("{broken")); err == nil {
		t.Error("bad JSON should error")
	}
	if _, err := ReadTIMatrixJSON(strings.NewReader("[]")); err == nil {
		t.Error("wrong JSON shape should error")
	}
}
